#include "core/blowup.h"

#include <map>
#include <set>

namespace rbda {

Instance CloneBlowup(const Instance& instance, size_t copies,
                     Universe* universe) {
  RBDA_CHECK(copies >= 1);
  // clone(t, 0) = t; clone(t, j) = a fresh null per (t, j).
  std::map<std::pair<Term, size_t>, Term> clones;
  auto clone = [&](Term t, size_t j) {
    if (j == 0) return t;
    auto [it, inserted] = clones.emplace(std::make_pair(t, j), Term());
    if (inserted) it->second = universe->FreshNull();
    return it->second;
  };

  Instance out;
  instance.ForEachFact([&](FactRef f) {
    size_t n = f.arity();
    // Enumerate all clone-index vectors in {0..copies-1}^n.
    std::vector<size_t> idx(n, 0);
    for (;;) {
      std::vector<Term> args;
      args.reserve(n);
      for (size_t i = 0; i < n; ++i) {
        args.push_back(clone(f.arg(static_cast<uint32_t>(i)), idx[i]));
      }
      out.AddFact(f.relation(), std::move(args));
      size_t i = 0;
      while (i < n) {
        if (++idx[i] < copies) break;
        idx[i] = 0;
        ++i;
      }
      if (i == n) break;
      if (n == 0) break;
    }
  });
  return out;
}

StatusOr<BlowUpResult> BlowUpExistenceCheck(const ServiceSchema& original,
                                            const ServiceSchema& simplified,
                                            const AMonDetCounterexample& ce,
                                            size_t copies,
                                            const ChaseOptions& chase) {
  Universe* universe = const_cast<Universe*>(&original.universe());

  // Relations of the original schema (the blow-up restricts to these).
  std::unordered_set<RelationId> original_relations(
      original.relations().begin(), original.relations().end());

  // Step 1: obliviously chase the view-to-relation IDs — for every view
  // fact R_mt(x̄) in the accessed part, create `copies` fresh matching
  // R-tuples.
  Instance star = ce.accessed;
  for (const AccessMethod& method : original.methods()) {
    if (!method.HasBound()) continue;
    std::string view_name = universe->RelationName(method.relation) + "__" +
                            method.name;
    RelationId view;
    if (!universe->LookupRelation(view_name, &view)) {
      return Status::NotFound("missing existence-check view '" + view_name +
                              "' — was `simplified` built by "
                              "ExistenceCheckSimplification?");
    }
    uint32_t arity = universe->Arity(method.relation);
    for (FactRef vf : ce.accessed.FactsOf(view)) {
      for (size_t c = 0; c < copies; ++c) {
        std::vector<Term> args(arity, Term());
        std::vector<bool> is_input(arity, false);
        for (size_t i = 0; i < method.input_positions.size(); ++i) {
          args[method.input_positions[i]] = vf.arg(static_cast<uint32_t>(i));
          is_input[method.input_positions[i]] = true;
        }
        for (uint32_t p = 0; p < arity; ++p) {
          if (!is_input[p]) args[p] = universe->FreshNull();
        }
        star.AddFact(method.relation, std::move(args));
      }
    }
  }

  // Step 2: close the accessed part under the original IDs.
  ConstraintSet ids_only;
  ids_only.tgds = original.constraints().tgds;
  ChaseResult closed = RunChase(star, ids_only, universe, chase);
  if (closed.status != ChaseStatus::kCompleted) {
    return Status::ResourceExhausted(
        "chase budget exceeded while closing the blown-up accessed part");
  }
  Instance accessed_plus = closed.instance.RestrictTo(original_relations);

  // Step 3: union into both sides and restrict to the original signature.
  BlowUpResult out;
  out.accessed = accessed_plus;
  out.i1 = ce.i1.RestrictTo(original_relations);
  out.i1.UnionWith(accessed_plus);
  out.i2 = ce.i2.RestrictTo(original_relations);
  out.i2.UnionWith(accessed_plus);
  (void)simplified;
  return out;
}

}  // namespace rbda
