// UCQ rewriting of a CQ under inclusion dependencies (PerfectRef-style,
// Calì–Lembo–Rosati / Calì–Gottlob–Lukasiewicz).
//
// Produces a union of CQs R such that for every instance A:
//     chase(A, Σ) ⊨ Q      iff      A ⊨ R,
// i.e. R computes the certain answers of Q over A under the IDs Σ. Plan
// synthesis uses this as the final middleware step: evaluating R over the
// accessed facts yields exactly the facts Q-entailed by what was accessed.
#ifndef RBDA_CORE_REWRITING_H_
#define RBDA_CORE_REWRITING_H_

#include "constraints/constraint_set.h"
#include "logic/conjunctive_query.h"

namespace rbda {

struct RewriteOptions {
  size_t max_cqs = 256;  // cap on the number of disjuncts explored
};

/// Rewrites `q` under the IDs `ids` (each TGD must be an ID). Returns the
/// UCQ rewriting; the first disjunct is always `q` itself. If the cap is
/// hit, the result is still sound (every disjunct is entailed) but may be
/// incomplete.
UnionQuery RewriteUnderIds(const ConjunctiveQuery& q,
                           const std::vector<Tgd>& ids, Universe* universe,
                           const RewriteOptions& options = {});

}  // namespace rbda

#endif  // RBDA_CORE_REWRITING_H_
