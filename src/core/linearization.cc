#include "core/linearization.h"

#include <algorithm>

#include "chase/containment.h"
#include "core/reduction.h"

namespace rbda {

namespace {

PosMask FullMask(uint32_t arity) {
  return arity >= 32 ? ~PosMask(0) : ((PosMask(1) << arity) - 1);
}

// All masks over `arity` positions with at most `w` bits set, plus the full
// mask.
std::set<PosMask> SmallMasks(uint32_t arity, size_t w) {
  std::set<PosMask> out;
  PosMask full = FullMask(arity);
  // Enumerate by combinations: start from the empty mask and grow.
  std::vector<PosMask> frontier{0};
  out.insert(0);
  for (size_t round = 0; round < w; ++round) {
    std::vector<PosMask> next;
    for (PosMask m : frontier) {
      for (uint32_t p = 0; p < arity; ++p) {
        PosMask grown = m | (PosMask(1) << p);
        if (grown != m && out.insert(grown).second) next.push_back(grown);
      }
    }
    frontier = std::move(next);
  }
  out.insert(full);
  return out;
}

// Structural view of an inclusion dependency.
struct IdView {
  RelationId body_rel = 0;
  RelationId head_rel = 0;
  uint32_t body_arity = 0;
  uint32_t head_arity = 0;
  // (body position, head position) per exported variable.
  std::vector<std::pair<uint32_t, uint32_t>> exported;
};

IdView ViewId(const Tgd& tgd) {
  RBDA_CHECK(tgd.IsId());
  IdView view;
  const Atom& body = tgd.body()[0];
  const Atom& head = tgd.head()[0];
  view.body_rel = body.relation;
  view.head_rel = head.relation;
  view.body_arity = static_cast<uint32_t>(body.args.size());
  view.head_arity = static_cast<uint32_t>(head.args.size());
  for (uint32_t bp = 0; bp < body.args.size(); ++bp) {
    for (uint32_t hp = 0; hp < head.args.size(); ++hp) {
      if (body.args[bp] == head.args[hp]) {
        view.exported.emplace_back(bp, hp);
      }
    }
  }
  return view;
}

}  // namespace

TruncatedSaturation::TruncatedSaturation(
    const std::vector<Tgd>& ids, const std::vector<AccessMethod>& methods,
    const Universe& universe, size_t w,
    const std::map<RelationId, std::set<PosMask>>& extra_masks)
    : w_(w) {
  // Track every relation appearing in the IDs or methods.
  std::set<RelationId> relations;
  for (const Tgd& tgd : ids) {
    relations.insert(tgd.body()[0].relation);
    relations.insert(tgd.head()[0].relation);
  }
  for (const AccessMethod& m : methods) relations.insert(m.relation);
  for (const auto& [rel, _] : extra_masks) relations.insert(rel);

  for (RelationId rel : relations) {
    uint32_t arity = universe.Arity(rel);
    full_mask_[rel] = FullMask(arity);
    for (PosMask m : SmallMasks(arity, w_)) {
      cl_[{rel, m}] = m;
    }
    auto it = extra_masks.find(rel);
    if (it != extra_masks.end()) {
      for (PosMask m : it->second) cl_[{rel, m}] = m;
    }
  }
  // (Access): only non-result-bounded methods make a fact's outputs
  // accessible. Boolean methods have no outputs, so including them is
  // harmless.
  for (const AccessMethod& m : methods) {
    if (m.HasBound() &&
        m.input_positions.size() != universe.Arity(m.relation)) {
      continue;
    }
    PosMask inputs = 0;
    for (uint32_t p : m.input_positions) inputs |= PosMask(1) << p;
    access_inputs_[m.relation].push_back(inputs);
  }
  Saturate(ids, universe);
}

PosMask TruncatedSaturation::Expand(RelationId relation, PosMask start) const {
  PosMask cur = start;
  bool changed = true;
  auto full_it = full_mask_.find(relation);
  PosMask full = full_it == full_mask_.end() ? 0 : full_it->second;
  while (changed) {
    changed = false;
    // (Transitivity) over the tracked derived axioms.
    for (auto it = cl_.lower_bound({relation, 0});
         it != cl_.end() && it->first.first == relation; ++it) {
      PosMask premise = it->first.second;
      if ((premise & ~cur) == 0 && (it->second & ~cur) != 0) {
        cur |= it->second;
        changed = true;
      }
    }
    // (Access).
    auto acc = access_inputs_.find(relation);
    if (acc != access_inputs_.end() && cur != full) {
      for (PosMask inputs : acc->second) {
        if ((inputs & ~cur) == 0) {
          cur = full;
          changed = true;
          break;
        }
      }
    }
  }
  return cur;
}

void TruncatedSaturation::Saturate(const std::vector<Tgd>& ids,
                                   const Universe& universe) {
  (void)universe;
  std::vector<IdView> views;
  views.reserve(ids.size());
  for (const Tgd& tgd : ids) views.push_back(ViewId(tgd));

  bool changed = true;
  while (changed) {
    changed = false;
    // Expand every tracked closure in place.
    for (auto& [key, cl] : cl_) {
      PosMask expanded = Expand(key.first, cl);
      if (expanded != cl) {
        cl = expanded;
        changed = true;
      }
    }
    // (ID) pullback: a derived axiom on the head relation, restricted to
    // exported positions, pulls back to the body relation.
    for (const IdView& view : views) {
      size_t e = view.exported.size();
      for (PosMask choice = 0; choice < (PosMask(1) << e); ++choice) {
        PosMask head_premise = 0, body_premise = 0;
        for (size_t i = 0; i < e; ++i) {
          if (choice & (PosMask(1) << i)) {
            body_premise |= PosMask(1) << view.exported[i].first;
            head_premise |= PosMask(1) << view.exported[i].second;
          }
        }
        auto head_it = cl_.find({view.head_rel, head_premise});
        if (head_it == cl_.end()) continue;
        PosMask derived_head = head_it->second;
        auto body_it = cl_.find({view.body_rel, body_premise});
        RBDA_CHECK(body_it != cl_.end());
        for (size_t i = 0; i < e; ++i) {
          PosMask head_bit = PosMask(1) << view.exported[i].second;
          PosMask body_bit = PosMask(1) << view.exported[i].first;
          if ((derived_head & head_bit) && !(body_it->second & body_bit)) {
            body_it->second |= body_bit;
            changed = true;
          }
        }
      }
    }
  }
}

PosMask TruncatedSaturation::Closure(RelationId relation,
                                     PosMask start) const {
  return Expand(relation, start);
}

StatusOr<LinearizedProblem> LinearizeAnswerability(
    const ServiceSchema& schema, const ConjunctiveQuery& q,
    const std::vector<LinearizedMethod>& methods,
    const TermSet* accessible_constants) {
  if (!q.IsBoolean()) {
    return Status::InvalidArgument("linearization expects a Boolean query");
  }
  for (const Tgd& tgd : schema.constraints().tgds) {
    if (!tgd.IsId()) {
      return Status::FailedPrecondition(
          "linearization requires ID constraints only");
    }
  }
  Universe* universe = const_cast<Universe*>(&schema.universe());
  size_t w = std::max<size_t>(schema.constraints().MaxIdWidth(), 1);

  std::vector<AccessMethod> plain_methods;
  for (const LinearizedMethod& lm : methods) plain_methods.push_back(*lm.method);
  TruncatedSaturation saturation(schema.constraints().tgds, plain_methods,
                                 *universe, w);

  // ---- Initial accessibility fixpoint over CanonDB(Q). ----
  Instance canon = q.CanonicalDatabase();
  TermSet accessible =
      accessible_constants != nullptr ? *accessible_constants : q.Constants();
  auto fact_mask = [&](FactRef f) {
    PosMask m = 0;
    for (uint32_t p = 0; p < f.arity(); ++p) {
      if (accessible.count(f.arg(p))) m |= PosMask(1) << p;
    }
    return m;
  };
  bool grew = true;
  while (grew) {
    grew = false;
    canon.ForEachFact([&](FactRef f) {
      PosMask cl = saturation.Closure(f.relation(), fact_mask(f));
      for (uint32_t p = 0; p < f.arity(); ++p) {
        if ((cl & (PosMask(1) << p)) && accessible.insert(f.arg(p)).second) {
          grew = true;
        }
      }
    });
  }

  // Masks that actually occur at level 0 (may exceed width w).
  std::map<RelationId, std::set<PosMask>> initial_masks;
  canon.ForEachFact(
      [&](FactRef f) { initial_masks[f.relation()].insert(fact_mask(f)); });

  // ---- Expanded signature. ----
  auto lin_rel = [&](RelationId rel, PosMask mask) {
    StatusOr<RelationId> id = universe->AddRelation(
        universe->RelationName(rel) + "@L" + std::to_string(mask),
        universe->Arity(rel));
    RBDA_CHECK(id.ok());
    return *id;
  };
  auto fresh_args = [&](uint32_t arity) {
    std::vector<Term> args;
    args.reserve(arity);
    for (uint32_t p = 0; p < arity; ++p) args.push_back(universe->FreshVariable());
    return args;
  };

  LinearizedProblem out;
  std::vector<Tgd> bounded_rules, acyclic_rules;

  std::vector<IdView> views;
  for (const Tgd& tgd : schema.constraints().tgds) views.push_back(ViewId(tgd));

  // Group the method configs by relation.
  std::map<RelationId, std::vector<const LinearizedMethod*>> methods_of;
  for (const LinearizedMethod& lm : methods) {
    methods_of[lm.method->relation].push_back(&lm);
  }

  for (RelationId rel : schema.relations()) {
    uint32_t arity = universe->Arity(rel);
    std::set<PosMask> masks = SmallMasks(arity, w);
    auto extra = initial_masks.find(rel);
    if (extra != initial_masks.end()) {
      masks.insert(extra->second.begin(), extra->second.end());
    }
    RelationId primed = PrimedRelation(universe, rel);

    // Pair relations (RB-Choice regime): one per visible bounded method,
    // with their two unpacking rules (emitted once).
    std::map<const LinearizedMethod*, RelationId> pair_rel;
    auto mit = methods_of.find(rel);
    if (mit != methods_of.end()) {
      for (const LinearizedMethod* lm : mit->second) {
        bool is_boolean = lm->method->input_positions.size() == arity;
        if (!lm->method->HasBound() || is_boolean || !lm->visible_outputs) {
          continue;
        }
        StatusOr<RelationId> pr = universe->AddRelation(
            universe->RelationName(rel) + "@pair@" + lm->method->name, arity);
        RBDA_CHECK(pr.ok());
        pair_rel[lm] = *pr;
        std::vector<Term> args = fresh_args(arity);
        // Pair(w) -> R_full(w): the returned tuple is fully accessible.
        bounded_rules.emplace_back(
            std::vector<Atom>{Atom(*pr, args)},
            std::vector<Atom>{Atom(lin_rel(rel, FullMask(arity)), args)});
        // Pair(w) -> R'(w).
        acyclic_rules.emplace_back(std::vector<Atom>{Atom(*pr, args)},
                                   std::vector<Atom>{Atom(primed, args)});
      }
    }

    for (PosMask mask : masks) {
      PosMask cl = saturation.Closure(rel, mask);
      RelationId subscripted = lin_rel(rel, mask);

      // (Lift) per ID with this body relation.
      for (const IdView& view : views) {
        if (view.body_rel != rel) continue;
        std::vector<Term> body_args = fresh_args(view.body_arity);
        PosMask head_mask = 0;
        std::vector<Term> head_args = fresh_args(view.head_arity);
        for (const auto& [bp, hp] : view.exported) {
          head_args[hp] = body_args[bp];
          if (cl & (PosMask(1) << bp)) head_mask |= PosMask(1) << hp;
        }
        bounded_rules.emplace_back(
            std::vector<Atom>{Atom(subscripted, body_args)},
            std::vector<Atom>{Atom(lin_rel(view.head_rel, head_mask),
                                   head_args)});
      }

      // (Transfer) / (RB-Transfer) / (RB-Choice) per method.
      if (mit == methods_of.end()) continue;
      for (const LinearizedMethod* lm : mit->second) {
        const AccessMethod& method = *lm->method;
        PosMask inputs = 0;
        for (uint32_t p : method.input_positions) inputs |= PosMask(1) << p;
        if ((inputs & ~cl) != 0) continue;  // inputs not accessible
        bool is_boolean = method.input_positions.size() == arity;
        bool bounded = method.HasBound() && !is_boolean;
        std::vector<Term> body_args = fresh_args(arity);
        if (!bounded) {
          acyclic_rules.emplace_back(
              std::vector<Atom>{Atom(subscripted, body_args)},
              std::vector<Atom>{Atom(primed, body_args)});
        } else if (!lm->visible_outputs) {
          // E.5.2: R_P(x,y) -> ∃z R'(x,z).
          std::vector<Term> head_args = fresh_args(arity);
          for (uint32_t p : method.input_positions) head_args[p] = body_args[p];
          acyclic_rules.emplace_back(
              std::vector<Atom>{Atom(subscripted, body_args)},
              std::vector<Atom>{Atom(primed, head_args)});
        } else {
          // RB-Choice: R_P(u) -> ∃z Pair(v), keeping the kept positions.
          std::vector<Term> head_args = fresh_args(arity);
          for (uint32_t p : lm->kept_positions) head_args[p] = body_args[p];
          bounded_rules.emplace_back(
              std::vector<Atom>{Atom(subscripted, body_args)},
              std::vector<Atom>{Atom(pair_rel.at(lm), head_args)});
        }
      }
    }
  }

  // (Σ') primed copies of the IDs.
  for (const IdView& view : views) {
    std::vector<Term> body_args = fresh_args(view.body_arity);
    std::vector<Term> head_args = fresh_args(view.head_arity);
    for (const auto& [bp, hp] : view.exported) head_args[hp] = body_args[bp];
    bounded_rules.emplace_back(
        std::vector<Atom>{Atom(PrimedRelation(universe, view.body_rel),
                               body_args)},
        std::vector<Atom>{Atom(PrimedRelation(universe, view.head_rel),
                               head_args)});
  }

  // ---- Initial instance. ----
  canon.ForEachFact([&](FactRef f) {
    PosMask acc_mask = fact_mask(f);
    uint32_t arity = f.arity();
    // All sub-masks of size ≤ w, plus the exact mask.
    for (PosMask m : SmallMasks(arity, w)) {
      PosMask sub = m & acc_mask;
      out.start.AddRow(lin_rel(f.relation(), sub), f.args());
    }
    out.start.AddRow(lin_rel(f.relation(), acc_mask), f.args());

    // Direct level-0 transfers (accessibility of level-0 facts is fully
    // described by acc_mask, which the fixpoint above already closed).
    auto m_it = methods_of.find(f.relation());
    if (m_it == methods_of.end()) return;
    for (const LinearizedMethod* lm : m_it->second) {
      const AccessMethod& method = *lm->method;
      PosMask inputs = 0;
      for (uint32_t p : method.input_positions) inputs |= PosMask(1) << p;
      if ((inputs & ~acc_mask) != 0) continue;
      bool is_boolean = method.input_positions.size() == arity;
      bool bounded = method.HasBound() && !is_boolean;
      RelationId primed = PrimedRelation(universe, f.relation());
      if (!bounded) {
        out.start.AddRow(primed, f.args());
      } else if (!lm->visible_outputs) {
        std::vector<Term> args(arity);
        for (uint32_t p = 0; p < arity; ++p) args[p] = universe->FreshNull();
        for (uint32_t p : method.input_positions) args[p] = f.arg(p);
        out.start.AddFact(primed, std::move(args));
      } else {
        std::vector<Term> args(arity);
        for (uint32_t p = 0; p < arity; ++p) args[p] = universe->FreshNull();
        for (uint32_t p : lm->kept_positions) args[p] = f.arg(p);
        out.start.AddFact(lin_rel(f.relation(), FullMask(arity)), args);
        out.start.AddFact(primed, args);
      }
    }
  });

  // ---- Goal and depth bound. ----
  out.goal = PrimeQuery(universe, q).atoms();

  size_t w_eff = 1;
  for (const Tgd& tgd : bounded_rules) w_eff = std::max(w_eff, tgd.Width());
  size_t max_arity = 2;
  for (RelationId rel : schema.relations()) {
    max_arity = std::max<size_t>(max_arity, universe->Arity(rel));
  }
  out.effective_width = w_eff;
  out.num_rules_bounded = bounded_rules.size();
  out.num_rules_acyclic = acyclic_rules.size();
  out.jk_depth_bound =
      JohnsonKlugDepthBound(out.goal.size(), bounded_rules.size(),
                            acyclic_rules.size(), max_arity, w_eff);

  out.tgds = std::move(bounded_rules);
  out.tgds.insert(out.tgds.end(), acyclic_rules.begin(), acyclic_rules.end());
  return out;
}

}  // namespace rbda
