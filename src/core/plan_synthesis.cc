#include "core/plan_synthesis.h"

#include <algorithm>
#include <set>

namespace rbda {

namespace {

std::string ValuesTable(size_t round) { return "V" + std::to_string(round); }
std::string InputTable(size_t round, size_t m) {
  return "IN" + std::to_string(round) + "_" + std::to_string(m);
}
std::string AccessTable(size_t round, size_t m) {
  return "AC" + std::to_string(round) + "_" + std::to_string(m);
}

}  // namespace

StatusOr<Plan> SynthesizeSaturationPlan(
    const ServiceSchema& schema, const ConjunctiveQuery& q,
    const std::vector<size_t>& method_indexes, size_t rounds,
    const SynthesisOptions& options) {
  Universe* universe = const_cast<Universe*>(&schema.universe());
  auto allowed = [&](size_t m) {
    return std::find(method_indexes.begin(), method_indexes.end(), m) !=
           method_indexes.end();
  };
  Plan plan;

  // V0: the constants of the query (a constant tuple per value; a
  // middleware command whose disjuncts have empty bodies).
  std::vector<TableCq> v0;
  for (Term c : q.Constants()) {
    v0.push_back(TableCq{{}, {c}});
  }
  plan.Middleware(ValuesTable(0), std::move(v0));

  // Saturation rounds.
  for (size_t round = 1; round <= rounds; ++round) {
    for (size_t m = 0; m < schema.methods().size(); ++m) {
      if (!allowed(m)) continue;
      const AccessMethod& method = schema.methods()[m];
      if (method.IsInputFree()) {
        plan.Access(AccessTable(round, m), method.name);
      } else {
        // IN := cartesian product of the known values, one column per
        // input position.
        TableCq cartesian;
        for (size_t i = 0; i < method.input_positions.size(); ++i) {
          Term v = universe->FreshVariable();
          cartesian.atoms.push_back(
              TableAtom{ValuesTable(round - 1), {v}});
          cartesian.head.push_back(v);
        }
        plan.Middleware(InputTable(round, m), {cartesian});
        plan.Access(AccessTable(round, m), method.name,
                    InputTable(round, m));
      }
    }
    // V_round := V_{round-1} ∪ every column of every access output so far
    // in this round.
    std::vector<TableCq> values;
    {
      Term v = universe->FreshVariable();
      values.push_back(TableCq{{TableAtom{ValuesTable(round - 1), {v}}}, {v}});
    }
    for (size_t m = 0; m < schema.methods().size(); ++m) {
      if (!allowed(m)) continue;
      const AccessMethod& method = schema.methods()[m];
      uint32_t arity = universe->Arity(method.relation);
      for (uint32_t col = 0; col < arity; ++col) {
        std::vector<Term> args;
        for (uint32_t p = 0; p < arity; ++p) {
          args.push_back(universe->FreshVariable());
        }
        values.push_back(
            TableCq{{TableAtom{AccessTable(round, m), args}}, {args[col]}});
      }
    }
    plan.Middleware(ValuesTable(round), std::move(values));
  }

  // D_<relation>: union of every access over the relation.
  std::set<RelationId> accessible_relations;
  for (size_t m = 0; m < schema.methods().size(); ++m) {
    if (allowed(m)) accessible_relations.insert(schema.methods()[m].relation);
  }
  auto data_table = [&](RelationId rel) {
    return "D_" + universe->RelationName(rel);
  };
  for (RelationId rel : accessible_relations) {
    uint32_t arity = universe->Arity(rel);
    std::vector<TableCq> disjuncts;
    for (size_t round = 1; round <= rounds; ++round) {
      for (size_t m = 0; m < schema.methods().size(); ++m) {
        if (!allowed(m) || schema.methods()[m].relation != rel) continue;
        std::vector<Term> args;
        for (uint32_t p = 0; p < arity; ++p) {
          args.push_back(universe->FreshVariable());
        }
        disjuncts.push_back(
            TableCq{{TableAtom{AccessTable(round, m), args}}, args});
      }
    }
    plan.Middleware(data_table(rel), std::move(disjuncts));
  }

  // OUT: the certain-answer rewriting of Q evaluated over the D_ tables.
  std::vector<ConjunctiveQuery> disjuncts{q};
  if (options.use_rewriting) {
    bool all_ids = true;
    for (const Tgd& tgd : schema.constraints().tgds) {
      if (!tgd.IsId()) all_ids = false;
    }
    if (all_ids && !schema.constraints().tgds.empty()) {
      disjuncts = RewriteUnderIds(q, schema.constraints().tgds, universe,
                                  options.rewrite)
                      .disjuncts();
    }
  }
  std::vector<TableCq> out_union;
  for (const ConjunctiveQuery& cq : disjuncts) {
    bool usable = true;
    TableCq translated;
    for (const Atom& atom : cq.atoms()) {
      if (!accessible_relations.count(atom.relation)) {
        usable = false;  // relation has no method: its D_ table is empty
        break;
      }
      translated.atoms.push_back(
          TableAtom{data_table(atom.relation), atom.args});
    }
    if (!usable) continue;
    translated.head = cq.free_variables();
    out_union.push_back(std::move(translated));
  }
  if (out_union.empty()) {
    return Status::FailedPrecondition(
        "no rewriting of the query is supported by the accessible "
        "relations; the query cannot be answered by saturation");
  }
  plan.Middleware("OUT", std::move(out_union));
  plan.Return("OUT");
  return plan;
}

StatusOr<Plan> SynthesizeUniversalPlan(const ServiceSchema& schema,
                                       const ConjunctiveQuery& q,
                                       const SynthesisOptions& options) {
  std::vector<size_t> all;
  for (size_t m = 0; m < schema.methods().size(); ++m) all.push_back(m);
  return SynthesizeSaturationPlan(schema, q, all, options.access_rounds,
                                  options);
}

}  // namespace rbda
