// The inverse of the parser: renders schemas, queries, and instances back
// into the DSL, round-trippable through ParseDocument. Used by the CLI to
// dump counterexamples and simplified schemas as loadable documents.
#ifndef RBDA_PARSER_SERIALIZER_H_
#define RBDA_PARSER_SERIALIZER_H_

#include <map>
#include <string>

#include "logic/conjunctive_query.h"
#include "schema/service_schema.h"

namespace rbda {

/// Renders an atom in DSL syntax: constants quoted, variables bare.
std::string AtomToDsl(const Atom& atom, const Universe& universe);

/// Renders a full document: relations, methods, constraints, queries, and
/// facts. Labeled nulls in `data` are serialized as quoted constants
/// (reparsing yields a concrete instance with the same shape).
std::string SerializeDocument(
    const ServiceSchema& schema,
    const std::map<std::string, ConjunctiveQuery>& queries = {},
    const Instance& data = {});

}  // namespace rbda

#endif  // RBDA_PARSER_SERIALIZER_H_
