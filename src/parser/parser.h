// Text front-end for schemas, constraints, methods, queries, and instances.
//
// One statement per line; `#` starts a comment. Grammar by example:
//
//   relation Prof(id, name, salary)            # arity from the column list
//   method pr on Prof inputs(0)                # no bound: returns all
//   method ud on Udirectory inputs() limit 100 # result bound 100
//   method lb on R inputs(0,1) lower-limit 5   # result lower bound 5
//   tgd Udirectory(i,a,p) -> Prof(i,n,s)       # head-only vars existential
//   fd Udirectory: 0 -> 1                      # 0-based positions
//   query Q1(n) :- Prof(i, n, "10000")         # quoted/numeric = constant
//   fact Prof("p7", "alice", "10000")          # optional data section
//
// Bare identifiers inside atoms are variables; quoted strings and bare
// numbers are constants.
#ifndef RBDA_PARSER_PARSER_H_
#define RBDA_PARSER_PARSER_H_

#include <map>
#include <string>

#include "logic/conjunctive_query.h"
#include "schema/service_schema.h"

namespace rbda {

struct ParsedDocument {
  ServiceSchema schema;
  std::map<std::string, ConjunctiveQuery> queries;
  Instance data;  // facts, if any

  explicit ParsedDocument(Universe* universe) : schema(universe) {}
};

/// Parses a full document. Relations must be declared before use.
StatusOr<ParsedDocument> ParseDocument(std::string_view text,
                                       Universe* universe);

/// Parses a single query line body, e.g. "Q1(n) :- Prof(i, n, \"10000\")",
/// against relations already interned in `universe`.
StatusOr<ConjunctiveQuery> ParseQuery(std::string_view text,
                                      Universe* universe);

}  // namespace rbda

#endif  // RBDA_PARSER_PARSER_H_
