#include "parser/parser.h"

#include <cctype>
#include <sstream>

#include "base/str_util.h"

namespace rbda {

namespace {

// Line-oriented tokenizer: identifiers, numbers, quoted strings, and the
// punctuation the grammar needs ( ) , : & plus the arrows "->" and ":-".
struct Token {
  enum Kind { kIdent, kNumber, kString, kPunct, kEnd } kind = kEnd;
  std::string text;
};

class Lexer {
 public:
  explicit Lexer(std::string_view line) : line_(line) {}

  StatusOr<Token> Next() {
    SkipSpace();
    Token t;
    if (pos_ >= line_.size()) {
      t.kind = Token::kEnd;
      return t;
    }
    char c = line_[pos_];
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = pos_;
      while (pos_ < line_.size() &&
             (std::isalnum(static_cast<unsigned char>(line_[pos_])) ||
              line_[pos_] == '_')) {
        ++pos_;
      }
      t.kind = Token::kIdent;
      t.text = std::string(line_.substr(start, pos_ - start));
      return t;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = pos_;
      while (pos_ < line_.size() &&
             std::isdigit(static_cast<unsigned char>(line_[pos_]))) {
        ++pos_;
      }
      t.kind = Token::kNumber;
      t.text = std::string(line_.substr(start, pos_ - start));
      return t;
    }
    if (c == '"') {
      size_t start = ++pos_;
      while (pos_ < line_.size() && line_[pos_] != '"') ++pos_;
      if (pos_ >= line_.size()) {
        return Status::InvalidArgument("unterminated string literal");
      }
      t.kind = Token::kString;
      t.text = std::string(line_.substr(start, pos_ - start));
      ++pos_;
      return t;
    }
    if (c == '-' && pos_ + 1 < line_.size() && line_[pos_ + 1] == '>') {
      pos_ += 2;
      t.kind = Token::kPunct;
      t.text = "->";
      return t;
    }
    if (c == ':' && pos_ + 1 < line_.size() && line_[pos_ + 1] == '-') {
      pos_ += 2;
      t.kind = Token::kPunct;
      t.text = ":-";
      return t;
    }
    if (c == '(' || c == ')' || c == ',' || c == ':' || c == '&') {
      ++pos_;
      t.kind = Token::kPunct;
      t.text = std::string(1, c);
      return t;
    }
    return Status::InvalidArgument(std::string("unexpected character '") + c +
                                   "'");
  }

  StatusOr<Token> Peek() {
    size_t saved = pos_;
    StatusOr<Token> t = Next();
    pos_ = saved;
    return t;
  }

 private:
  void SkipSpace() {
    while (pos_ < line_.size() &&
           std::isspace(static_cast<unsigned char>(line_[pos_]))) {
      ++pos_;
    }
  }

  std::string_view line_;
  size_t pos_ = 0;
};

Status Expect(Lexer* lex, std::string_view text) {
  StatusOr<Token> t = lex->Next();
  RBDA_RETURN_IF_ERROR(t.status());
  if (t->text != text) {
    return Status::InvalidArgument("expected '" + std::string(text) +
                                   "', got '" + t->text + "'");
  }
  return Status::Ok();
}

StatusOr<std::string> ExpectIdent(Lexer* lex) {
  StatusOr<Token> t = lex->Next();
  RBDA_RETURN_IF_ERROR(t.status());
  if (t->kind != Token::kIdent) {
    return Status::InvalidArgument("expected identifier, got '" + t->text +
                                   "'");
  }
  return t->text;
}

StatusOr<uint32_t> ExpectNumber(Lexer* lex) {
  StatusOr<Token> t = lex->Next();
  RBDA_RETURN_IF_ERROR(t.status());
  if (t->kind != Token::kNumber) {
    return Status::InvalidArgument("expected number, got '" + t->text + "'");
  }
  return static_cast<uint32_t>(std::stoul(t->text));
}

// Parses "R(arg, arg, ...)" where bare identifiers become variables and
// quoted strings / numbers become constants.
StatusOr<Atom> ParseAtom(Lexer* lex, Universe* universe) {
  StatusOr<std::string> name = ExpectIdent(lex);
  RBDA_RETURN_IF_ERROR(name.status());
  RelationId rel;
  if (!universe->LookupRelation(*name, &rel)) {
    return Status::NotFound("unknown relation '" + *name + "'");
  }
  RBDA_RETURN_IF_ERROR(Expect(lex, "("));
  std::vector<Term> args;
  StatusOr<Token> peek = lex->Peek();
  RBDA_RETURN_IF_ERROR(peek.status());
  if (peek->text != ")") {
    for (;;) {
      StatusOr<Token> t = lex->Next();
      RBDA_RETURN_IF_ERROR(t.status());
      if (t->kind == Token::kIdent) {
        args.push_back(universe->Variable(t->text));
      } else if (t->kind == Token::kString || t->kind == Token::kNumber) {
        args.push_back(universe->Constant(t->text));
      } else {
        return Status::InvalidArgument("expected term, got '" + t->text +
                                       "'");
      }
      StatusOr<Token> sep = lex->Next();
      RBDA_RETURN_IF_ERROR(sep.status());
      if (sep->text == ")") break;
      if (sep->text != ",") {
        return Status::InvalidArgument("expected ',' or ')' in atom");
      }
    }
  } else {
    RBDA_RETURN_IF_ERROR(Expect(lex, ")"));
  }
  if (args.size() != universe->Arity(rel)) {
    return Status::InvalidArgument("atom for '" + *name +
                                   "' has wrong arity");
  }
  return Atom(rel, std::move(args));
}

StatusOr<std::vector<Atom>> ParseAtomList(Lexer* lex, Universe* universe) {
  std::vector<Atom> atoms;
  for (;;) {
    StatusOr<Atom> atom = ParseAtom(lex, universe);
    RBDA_RETURN_IF_ERROR(atom.status());
    atoms.push_back(std::move(*atom));
    StatusOr<Token> peek = lex->Peek();
    RBDA_RETURN_IF_ERROR(peek.status());
    if (peek->text != "&") break;
    RBDA_RETURN_IF_ERROR(Expect(lex, "&"));
  }
  return atoms;
}

Status ParseRelationLine(Lexer* lex, ServiceSchema* schema) {
  StatusOr<std::string> name = ExpectIdent(lex);
  RBDA_RETURN_IF_ERROR(name.status());
  RBDA_RETURN_IF_ERROR(Expect(lex, "("));
  uint32_t arity = 0;
  StatusOr<Token> peek = lex->Peek();
  RBDA_RETURN_IF_ERROR(peek.status());
  if (peek->text == ")") {
    RBDA_RETURN_IF_ERROR(Expect(lex, ")"));
  } else {
    for (;;) {
      StatusOr<std::string> col = ExpectIdent(lex);
      RBDA_RETURN_IF_ERROR(col.status());
      ++arity;
      StatusOr<Token> sep = lex->Next();
      RBDA_RETURN_IF_ERROR(sep.status());
      if (sep->text == ")") break;
      if (sep->text != ",") {
        return Status::InvalidArgument("expected ',' or ')' in column list");
      }
    }
  }
  return schema->AddRelation(*name, arity).status();
}

Status ParseMethodLine(Lexer* lex, ServiceSchema* schema) {
  AccessMethod method;
  StatusOr<std::string> name = ExpectIdent(lex);
  RBDA_RETURN_IF_ERROR(name.status());
  method.name = *name;
  RBDA_RETURN_IF_ERROR(Expect(lex, "on"));
  StatusOr<std::string> rel_name = ExpectIdent(lex);
  RBDA_RETURN_IF_ERROR(rel_name.status());
  if (!schema->universe().LookupRelation(*rel_name, &method.relation)) {
    return Status::NotFound("unknown relation '" + *rel_name + "'");
  }
  RBDA_RETURN_IF_ERROR(Expect(lex, "inputs"));
  RBDA_RETURN_IF_ERROR(Expect(lex, "("));
  StatusOr<Token> peek = lex->Peek();
  RBDA_RETURN_IF_ERROR(peek.status());
  if (peek->text == ")") {
    RBDA_RETURN_IF_ERROR(Expect(lex, ")"));
  } else {
    for (;;) {
      StatusOr<uint32_t> pos = ExpectNumber(lex);
      RBDA_RETURN_IF_ERROR(pos.status());
      method.input_positions.push_back(*pos);
      StatusOr<Token> sep = lex->Next();
      RBDA_RETURN_IF_ERROR(sep.status());
      if (sep->text == ")") break;
      if (sep->text != ",") {
        return Status::InvalidArgument("expected ',' or ')' in inputs");
      }
    }
  }
  StatusOr<Token> tail = lex->Next();
  RBDA_RETURN_IF_ERROR(tail.status());
  if (tail->kind != Token::kEnd) {
    if (tail->text == "limit") {
      method.bound_kind = BoundKind::kResultBound;
    } else if (tail->text == "lower") {
      // "lower-limit" lexes as ident "lower", punct "-"... accept the
      // hyphenated keyword written as `lower-limit`.
      return Status::InvalidArgument(
          "write the lower bound as 'lowerlimit <k>'");
    } else if (tail->text == "lowerlimit") {
      method.bound_kind = BoundKind::kResultLowerBound;
    } else {
      return Status::InvalidArgument("unexpected token '" + tail->text +
                                     "' after inputs");
    }
    StatusOr<uint32_t> k = ExpectNumber(lex);
    RBDA_RETURN_IF_ERROR(k.status());
    method.bound = *k;
  }
  return schema->AddMethod(std::move(method));
}

Status ParseTgdLine(Lexer* lex, ServiceSchema* schema) {
  StatusOr<std::vector<Atom>> body =
      ParseAtomList(lex, schema->mutable_universe());
  RBDA_RETURN_IF_ERROR(body.status());
  RBDA_RETURN_IF_ERROR(Expect(lex, "->"));
  StatusOr<std::vector<Atom>> head =
      ParseAtomList(lex, schema->mutable_universe());
  RBDA_RETURN_IF_ERROR(head.status());
  schema->constraints().tgds.emplace_back(std::move(*body), std::move(*head));
  return Status::Ok();
}

Status ParseFdLine(Lexer* lex, ServiceSchema* schema) {
  StatusOr<std::string> rel_name = ExpectIdent(lex);
  RBDA_RETURN_IF_ERROR(rel_name.status());
  RelationId rel;
  if (!schema->universe().LookupRelation(*rel_name, &rel)) {
    return Status::NotFound("unknown relation '" + *rel_name + "'");
  }
  RBDA_RETURN_IF_ERROR(Expect(lex, ":"));
  std::vector<uint32_t> lhs;
  for (;;) {
    StatusOr<Token> t = lex->Next();
    RBDA_RETURN_IF_ERROR(t.status());
    if (t->text == "->") break;
    if (t->text == ",") continue;
    if (t->kind != Token::kNumber) {
      return Status::InvalidArgument("expected position number in FD");
    }
    lhs.push_back(static_cast<uint32_t>(std::stoul(t->text)));
  }
  StatusOr<uint32_t> rhs = ExpectNumber(lex);
  RBDA_RETURN_IF_ERROR(rhs.status());
  schema->constraints().fds.emplace_back(rel, std::move(lhs), *rhs);
  return Status::Ok();
}

StatusOr<ConjunctiveQuery> ParseQueryBody(Lexer* lex, Universe* universe,
                                          std::string* name_out) {
  StatusOr<std::string> name = ExpectIdent(lex);
  RBDA_RETURN_IF_ERROR(name.status());
  if (name_out) *name_out = *name;
  RBDA_RETURN_IF_ERROR(Expect(lex, "("));
  std::vector<Term> frees;
  StatusOr<Token> peek = lex->Peek();
  RBDA_RETURN_IF_ERROR(peek.status());
  if (peek->text == ")") {
    RBDA_RETURN_IF_ERROR(Expect(lex, ")"));
  } else {
    for (;;) {
      StatusOr<Token> t = lex->Next();
      RBDA_RETURN_IF_ERROR(t.status());
      if (t->kind == Token::kIdent) {
        frees.push_back(universe->Variable(t->text));
      } else {
        return Status::InvalidArgument("free variables must be identifiers");
      }
      StatusOr<Token> sep = lex->Next();
      RBDA_RETURN_IF_ERROR(sep.status());
      if (sep->text == ")") break;
      if (sep->text != ",") {
        return Status::InvalidArgument("expected ',' or ')' in head");
      }
    }
  }
  RBDA_RETURN_IF_ERROR(Expect(lex, ":-"));
  StatusOr<std::vector<Atom>> atoms = ParseAtomList(lex, universe);
  RBDA_RETURN_IF_ERROR(atoms.status());
  return ConjunctiveQuery(std::move(*atoms), std::move(frees));
}

Status ParseFactLine(Lexer* lex, ParsedDocument* doc) {
  StatusOr<Atom> atom = ParseAtom(lex, doc->schema.mutable_universe());
  RBDA_RETURN_IF_ERROR(atom.status());
  for (const Term& t : atom->args) {
    if (!t.IsConstant()) {
      return Status::InvalidArgument("facts must use constants only");
    }
  }
  // Documents can arrive over the network (rbda_serve load-schema), so a
  // row-id-cap overflow must surface as a parse error, not an abort.
  bool inserted = false;
  return doc->data.TryAddFact(*atom, &inserted);
}

}  // namespace

StatusOr<ParsedDocument> ParseDocument(std::string_view text,
                                       Universe* universe) {
  ParsedDocument doc(universe);
  std::istringstream stream{std::string(text)};
  std::string raw_line;
  int line_no = 0;
  while (std::getline(stream, raw_line)) {
    ++line_no;
    std::string_view line(raw_line);
    size_t hash = line.find('#');
    if (hash != std::string_view::npos) line = line.substr(0, hash);
    line = StripAsciiWhitespace(line);
    if (line.empty()) continue;

    Lexer lex(line);
    StatusOr<Token> keyword = lex.Next();
    RBDA_RETURN_IF_ERROR(keyword.status());

    Status status = Status::Ok();
    if (keyword->text == "relation") {
      status = ParseRelationLine(&lex, &doc.schema);
    } else if (keyword->text == "method") {
      status = ParseMethodLine(&lex, &doc.schema);
    } else if (keyword->text == "tgd") {
      status = ParseTgdLine(&lex, &doc.schema);
    } else if (keyword->text == "fd") {
      status = ParseFdLine(&lex, &doc.schema);
    } else if (keyword->text == "query") {
      std::string name;
      StatusOr<ConjunctiveQuery> q = ParseQueryBody(&lex, universe, &name);
      if (!q.ok()) {
        status = q.status();
      } else {
        doc.queries.emplace(name, std::move(*q));
      }
    } else if (keyword->text == "fact") {
      status = ParseFactLine(&lex, &doc);
    } else {
      status =
          Status::InvalidArgument("unknown statement '" + keyword->text + "'");
    }
    if (!status.ok()) {
      return Status(status.code(), "line " + std::to_string(line_no) + ": " +
                                       status.message());
    }
  }
  return doc;
}

StatusOr<ConjunctiveQuery> ParseQuery(std::string_view text,
                                      Universe* universe) {
  Lexer lex(text);
  return ParseQueryBody(&lex, universe, nullptr);
}

}  // namespace rbda
