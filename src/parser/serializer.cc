#include "parser/serializer.h"

#include <algorithm>

#include "base/str_util.h"

namespace rbda {

namespace {

std::string TermToDsl(Term t, const Universe& universe,
                      bool quote_variables = false) {
  if (t.IsVariable() && !quote_variables) return universe.TermName(t);
  // Constants, nulls, and (in facts) frozen variables are quoted; nulls
  // and variables reparse as constants named after them.
  return "\"" + universe.TermName(t) + "\"";
}

std::string ArgsToDsl(const std::vector<Term>& args,
                      const Universe& universe) {
  std::vector<std::string> parts;
  parts.reserve(args.size());
  for (Term t : args) parts.push_back(TermToDsl(t, universe));
  return Join(parts, ", ");
}

}  // namespace

std::string AtomToDsl(const Atom& atom, const Universe& universe) {
  return universe.RelationName(atom.relation) + "(" +
         ArgsToDsl(atom.args, universe) + ")";
}

std::string SerializeDocument(
    const ServiceSchema& schema,
    const std::map<std::string, ConjunctiveQuery>& queries,
    const Instance& data) {
  const Universe& universe = schema.universe();
  std::string out;

  for (RelationId r : schema.relations()) {
    std::vector<std::string> cols;
    for (uint32_t p = 0; p < universe.Arity(r); ++p) {
      cols.push_back("p" + std::to_string(p));
    }
    out += "relation " + universe.RelationName(r) + "(" + Join(cols, ", ") +
           ")\n";
  }

  for (const AccessMethod& m : schema.methods()) {
    out += "method " + m.name + " on " + universe.RelationName(m.relation) +
           " inputs(";
    for (size_t i = 0; i < m.input_positions.size(); ++i) {
      if (i > 0) out += ", ";
      out += std::to_string(m.input_positions[i]);
    }
    out += ")";
    if (m.bound_kind == BoundKind::kResultBound) {
      out += " limit " + std::to_string(m.bound);
    } else if (m.bound_kind == BoundKind::kResultLowerBound) {
      out += " lowerlimit " + std::to_string(m.bound);
    }
    out += "\n";
  }

  for (const Tgd& tgd : schema.constraints().tgds) {
    std::vector<std::string> body, head;
    for (const Atom& a : tgd.body()) body.push_back(AtomToDsl(a, universe));
    for (const Atom& a : tgd.head()) head.push_back(AtomToDsl(a, universe));
    out += "tgd " + Join(body, " & ") + " -> " + Join(head, " & ") + "\n";
  }

  for (const Fd& fd : schema.constraints().fds) {
    out += "fd " + universe.RelationName(fd.relation) + ": ";
    for (size_t i = 0; i < fd.determiners.size(); ++i) {
      if (i > 0) out += ", ";
      out += std::to_string(fd.determiners[i]);
    }
    out += " -> " + std::to_string(fd.determined) + "\n";
  }

  for (const auto& [name, query] : queries) {
    std::vector<std::string> frees, atoms;
    for (Term v : query.free_variables()) {
      frees.push_back(universe.TermName(v));
    }
    for (const Atom& a : query.atoms()) atoms.push_back(AtomToDsl(a, universe));
    out += "query " + name + "(" + Join(frees, ", ") + ") :- " +
           Join(atoms, " & ") + "\n";
  }

  std::vector<Fact> facts;
  data.ForEachFact([&](FactRef f) { facts.push_back(Fact(f)); });
  std::sort(facts.begin(), facts.end());
  for (const Fact& f : facts) {
    std::vector<std::string> parts;
    for (Term t : f.args) {
      parts.push_back(TermToDsl(t, universe, /*quote_variables=*/true));
    }
    out += "fact " + universe.RelationName(f.relation) + "(" +
           Join(parts, ", ") + ")\n";
  }
  return out;
}

}  // namespace rbda
