// Schema registry and warm decision cache for rbda_serve.
//
// The registry maps names to parsed-and-validated schema documents.
// Entries hold the raw document text: decide/run workers re-parse it into
// a private Universe per request (the rbda_cli batch-mode pattern —
// Universe interning is not thread-safe, and a fresh parse gives
// deterministic term ids, which is what lets the global containment cache
// and the decision cache below hit across requests).
//
// Each entry carries a CircuitBreaker (runtime/resilience.h) guarding the
// engine: schemas whose decides keep failing stop consuming engine time
// until a cooldown probe succeeds. The breaker runs on a per-entry
// VirtualClock advanced to wall elapsed time under the entry mutex, so
// the deterministic breaker state machine needs no wall-clock variant.
//
// The DecisionCache memoizes rendered decide responses keyed by
// (schema name, epoch, query, option flags). A reload bumps the epoch, so
// stale verdicts die with their document version. Sharded and bounded:
// each shard evicts FIFO past its cap, so a cache-busting request stream
// costs misses, never memory.
#ifndef RBDA_SERVE_REGISTRY_H_
#define RBDA_SERVE_REGISTRY_H_

#include <array>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/status.h"
#include "runtime/resilience.h"

namespace rbda {

/// One registered schema document. `text` is immutable after
/// construction (reload replaces the whole entry); breaker state is
/// guarded by `mu`.
struct SchemaEntry {
  std::string name;
  std::string text;
  uint64_t epoch = 0;

  std::mutex mu;
  VirtualClock clock;  // advanced to wall elapsed before breaker calls
  CircuitBreaker breaker;

  SchemaEntry(std::string name_in, std::string text_in, uint64_t epoch_in,
              const CircuitBreakerOptions& breaker_options)
      : name(std::move(name_in)),
        text(std::move(text_in)),
        epoch(epoch_in),
        breaker("serve." + name, breaker_options, &clock) {}

  /// Advances the entry clock to `wall_us` (monotone µs since server
  /// start) and asks the breaker to admit an engine call.
  bool AllowEngineCall(uint64_t wall_us);
  void RecordEngineOutcome(uint64_t wall_us, bool ok);
  CircuitBreaker::State BreakerState();
};

class SchemaRegistry {
 public:
  explicit SchemaRegistry(CircuitBreakerOptions breaker_options)
      : breaker_options_(breaker_options) {}

  /// Parses `text` into a scratch Universe first; malformed documents are
  /// rejected with the parse error and do not disturb the registered
  /// entry. On success the entry is (re)placed with epoch = previous + 1.
  StatusOr<uint64_t> Load(const std::string& name, std::string text);

  /// nullptr when unknown. The returned entry stays valid after a reload
  /// replaces it (shared ownership); callers see a consistent
  /// (text, epoch) snapshot.
  std::shared_ptr<SchemaEntry> Find(const std::string& name);

  size_t size() const;

 private:
  CircuitBreakerOptions breaker_options_;
  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<SchemaEntry>> entries_;
  std::map<std::string, uint64_t> next_epoch_;
};

/// Sharded, bounded memo of rendered decide response bodies.
class DecisionCache {
 public:
  explicit DecisionCache(size_t max_entries_per_shard = 8192)
      : max_entries_per_shard_(max_entries_per_shard) {}

  bool Lookup(const std::string& key, std::string* body) const;
  void Insert(const std::string& key, const std::string& body);
  size_t size() const;

  /// The canonical cache key for a decide request.
  static std::string Key(const std::string& schema, uint64_t epoch,
                         const std::string& query, bool query_is_text,
                         bool finite, bool naive);

 private:
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<std::string, std::string> map;
    std::deque<std::string> fifo;  // insertion order, for eviction
  };
  static constexpr size_t kShards = 16;

  Shard& ShardFor(const std::string& key) const;

  size_t max_entries_per_shard_;
  mutable std::array<Shard, kShards> shards_;
};

}  // namespace rbda

#endif  // RBDA_SERVE_REGISTRY_H_
