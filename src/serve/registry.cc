#include "serve/registry.h"

#include <functional>

#include "parser/parser.h"

namespace rbda {

bool SchemaEntry::AllowEngineCall(uint64_t wall_us) {
  std::lock_guard<std::mutex> lock(mu);
  if (wall_us > clock.NowMicros()) clock.Sleep(wall_us - clock.NowMicros());
  return breaker.AllowRequest();
}

void SchemaEntry::RecordEngineOutcome(uint64_t wall_us, bool ok) {
  std::lock_guard<std::mutex> lock(mu);
  if (wall_us > clock.NowMicros()) clock.Sleep(wall_us - clock.NowMicros());
  if (ok) {
    breaker.RecordSuccess();
  } else {
    breaker.RecordFailure();
  }
}

CircuitBreaker::State SchemaEntry::BreakerState() {
  std::lock_guard<std::mutex> lock(mu);
  return breaker.state();
}

StatusOr<uint64_t> SchemaRegistry::Load(const std::string& name,
                                        std::string text) {
  {
    // Validate outside the registry lock: parsing is the expensive part
    // and needs no shared state.
    Universe scratch;
    StatusOr<ParsedDocument> doc = ParseDocument(text, &scratch);
    if (!doc.ok()) return doc.status();
  }
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t epoch = ++next_epoch_[name];
  entries_[name] = std::make_shared<SchemaEntry>(name, std::move(text),
                                                 epoch, breaker_options_);
  return epoch;
}

std::shared_ptr<SchemaEntry> SchemaRegistry::Find(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  return it == entries_.end() ? nullptr : it->second;
}

size_t SchemaRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

bool DecisionCache::Lookup(const std::string& key, std::string* body) const {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.map.find(key);
  if (it == shard.map.end()) return false;
  *body = it->second;
  return true;
}

void DecisionCache::Insert(const std::string& key, const std::string& body) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto [it, inserted] = shard.map.emplace(key, body);
  if (!inserted) return;  // concurrent miss already filled it
  shard.fifo.push_back(key);
  while (shard.fifo.size() > max_entries_per_shard_) {
    shard.map.erase(shard.fifo.front());
    shard.fifo.pop_front();
  }
}

size_t DecisionCache::size() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.map.size();
  }
  return total;
}

std::string DecisionCache::Key(const std::string& schema, uint64_t epoch,
                               const std::string& query, bool query_is_text,
                               bool finite, bool naive) {
  std::string key;
  key.reserve(schema.size() + query.size() + 32);
  key += schema;
  key += '\x01';
  key += std::to_string(epoch);
  key += '\x01';
  key += query_is_text ? 'T' : 'N';
  key += finite ? 'F' : '-';
  key += naive ? 'V' : '-';
  key += '\x01';
  key += query;
  return key;
}

DecisionCache::Shard& DecisionCache::ShardFor(const std::string& key) const {
  return shards_[std::hash<std::string>{}(key) % kShards];
}

}  // namespace rbda
