#include "serve/admission.h"

namespace rbda {

AdmissionController::Verdict AdmissionController::TryAdmit(
    const std::string& tenant) {
  std::lock_guard<std::mutex> lock(mu_);
  if (queued_ >= options_.max_queue) return Verdict::kQueueFull;
  size_t& tenant_count = tenant_inflight_[tenant];
  if (tenant_count >= options_.per_tenant_inflight) {
    if (tenant_count == 0) tenant_inflight_.erase(tenant);
    return Verdict::kTenantOverLimit;
  }
  ++queued_;
  ++in_flight_;
  ++tenant_count;
  return Verdict::kAdmitted;
}

void AdmissionController::OnDequeue() {
  std::lock_guard<std::mutex> lock(mu_);
  if (queued_ > 0) --queued_;
}

void AdmissionController::OnComplete(const std::string& tenant) {
  std::lock_guard<std::mutex> lock(mu_);
  if (in_flight_ > 0) --in_flight_;
  auto it = tenant_inflight_.find(tenant);
  if (it != tenant_inflight_.end() && --it->second == 0) {
    // Erase empty buckets so a scan of one-shot tenant names cannot grow
    // the map without bound.
    tenant_inflight_.erase(it);
  }
  if (in_flight_ == 0) idle_cv_.notify_all();
}

size_t AdmissionController::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queued_;
}

size_t AdmissionController::in_flight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return in_flight_;
}

void AdmissionController::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return in_flight_ == 0; });
}

}  // namespace rbda
