// Wire protocol of rbda_serve: newline-delimited JSON request/response
// over TCP (docs/SERVING.md).
//
// Requests are single-line JSON objects. The five operations:
//
//   {"op":"health"}
//   {"op":"metrics"}
//   {"op":"load-schema","name":"s1","document":"relation R(a,b)\n..."}
//   {"op":"decide","schema":"s1","query":"Q1"}            # named query
//   {"op":"decide","schema":"s1","query_text":"Q(x) :- R(x,y)"}
//   {"op":"run","schema":"s1","query":"Q1","faults":"transient=0.2"}
//
// Optional request fields: "id" (echoed back verbatim), "tenant"
// (admission bucket), "deadline_ms" (end-to-end budget including queue
// wait), "finite"/"naive" (decide variants), "debug_sleep_us" (test hook,
// honored only when the server enables it).
//
// Responses are single-line JSON objects. Success: {"id":...,"ok":true,
// ...op fields...}. Failure: {"id":...,"ok":false,"error":"<code>",
// "detail":"..."} where <code> is one of the stable taxonomy strings
// below — clients key shed/deadline accounting off them.
#ifndef RBDA_SERVE_PROTOCOL_H_
#define RBDA_SERVE_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "base/status.h"
#include "obs/json_reader.h"

namespace rbda {

enum class ServeOp { kHealth, kMetrics, kLoadSchema, kDecide, kRun };

const char* ServeOpName(ServeOp op);

/// Stable error-code strings of the response taxonomy.
namespace serve_error {
inline constexpr char kBadRequest[] = "bad_request";
inline constexpr char kFrameTooLarge[] = "frame_too_large";
inline constexpr char kNotFound[] = "schema_not_found";
inline constexpr char kUnknownQuery[] = "unknown_query";
inline constexpr char kOverloaded[] = "overloaded";
inline constexpr char kTenantOverLimit[] = "tenant_over_limit";
inline constexpr char kDeadlineInQueue[] = "deadline_in_queue";
inline constexpr char kDeadlineExceeded[] = "deadline_exceeded";
inline constexpr char kBreakerOpen[] = "breaker_open";
inline constexpr char kShuttingDown[] = "shutting_down";
inline constexpr char kEngineError[] = "engine_error";
}  // namespace serve_error

/// One parsed request. String fields default to "", numerics to 0.
struct ServeRequest {
  ServeOp op = ServeOp::kHealth;
  std::string id;          // opaque; echoed in the response when nonempty
  std::string schema;      // decide/run: registry name
  std::string name;        // load-schema: registry name
  std::string document;    // load-schema: document text
  std::string query;       // decide/run: named query in the document
  std::string query_text;  // decide: ad-hoc query line (cache-busting)
  std::string tenant;      // admission bucket; "" = shared default bucket
  std::string faults;      // run: ParseFaultSpec grammar
  uint64_t deadline_ms = 0;  // 0 = server default
  uint64_t seed = 1;         // run: selector seed
  uint64_t debug_sleep_us = 0;  // test hook (ServerOptions gates it)
  bool finite = false;
  bool naive = false;
};

/// Parses one request line. Every malformation — invalid JSON, missing or
/// unknown "op", wrong field types, per-op required fields absent — is an
/// InvalidArgument whose message goes into the bad_request response.
StatusOr<ServeRequest> ParseServeRequest(std::string_view line);

/// Renders the error-response line (terminating '\n' included).
/// `id` may be empty (field omitted).
std::string RenderServeError(std::string_view id, std::string_view code,
                             std::string_view detail);

/// Renders a success-response line around pre-rendered body fields, e.g.
/// body = "\"verdict\":\"answerable\",\"complete\":true". Empty body
/// renders {"ok":true}.
std::string RenderServeOk(std::string_view id, std::string_view body);

}  // namespace rbda

#endif  // RBDA_SERVE_PROTOCOL_H_
