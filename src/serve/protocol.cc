#include "serve/protocol.h"

#include "obs/json.h"

namespace rbda {

const char* ServeOpName(ServeOp op) {
  switch (op) {
    case ServeOp::kHealth:
      return "health";
    case ServeOp::kMetrics:
      return "metrics";
    case ServeOp::kLoadSchema:
      return "load-schema";
    case ServeOp::kDecide:
      return "decide";
    case ServeOp::kRun:
      return "run";
  }
  return "unknown";
}

StatusOr<ServeRequest> ParseServeRequest(std::string_view line) {
  StatusOr<JsonValue> parsed = ParseJson(line);
  if (!parsed.ok()) return parsed.status();
  const JsonValue& v = *parsed;
  if (!v.is_object()) {
    return Status::InvalidArgument("request must be a JSON object");
  }

  ServeRequest req;
  StatusOr<std::string> op = v.GetString("op", "");
  if (!op.ok()) return op.status();
  if (*op == "health") {
    req.op = ServeOp::kHealth;
  } else if (*op == "metrics") {
    req.op = ServeOp::kMetrics;
  } else if (*op == "load-schema") {
    req.op = ServeOp::kLoadSchema;
  } else if (*op == "decide") {
    req.op = ServeOp::kDecide;
  } else if (*op == "run") {
    req.op = ServeOp::kRun;
  } else if (op->empty()) {
    return Status::InvalidArgument("missing required field 'op'");
  } else {
    return Status::InvalidArgument("unknown op '" + *op + "'");
  }

  auto get_string = [&v](const char* key, std::string* out) -> Status {
    StatusOr<std::string> s = v.GetString(key, "");
    if (!s.ok()) return s.status();
    *out = std::move(*s);
    return Status::Ok();
  };
  RBDA_RETURN_IF_ERROR(get_string("id", &req.id));
  RBDA_RETURN_IF_ERROR(get_string("schema", &req.schema));
  RBDA_RETURN_IF_ERROR(get_string("name", &req.name));
  RBDA_RETURN_IF_ERROR(get_string("document", &req.document));
  RBDA_RETURN_IF_ERROR(get_string("query", &req.query));
  RBDA_RETURN_IF_ERROR(get_string("query_text", &req.query_text));
  RBDA_RETURN_IF_ERROR(get_string("tenant", &req.tenant));
  RBDA_RETURN_IF_ERROR(get_string("faults", &req.faults));

  StatusOr<uint64_t> deadline = v.GetUint("deadline_ms", 0);
  if (!deadline.ok()) return deadline.status();
  req.deadline_ms = *deadline;
  StatusOr<uint64_t> seed = v.GetUint("seed", 1);
  if (!seed.ok()) return seed.status();
  req.seed = *seed;
  StatusOr<uint64_t> sleep_us = v.GetUint("debug_sleep_us", 0);
  if (!sleep_us.ok()) return sleep_us.status();
  req.debug_sleep_us = *sleep_us;
  StatusOr<bool> finite = v.GetBool("finite", false);
  if (!finite.ok()) return finite.status();
  req.finite = *finite;
  StatusOr<bool> naive = v.GetBool("naive", false);
  if (!naive.ok()) return naive.status();
  req.naive = *naive;

  switch (req.op) {
    case ServeOp::kHealth:
    case ServeOp::kMetrics:
      break;
    case ServeOp::kLoadSchema:
      if (req.name.empty()) {
        return Status::InvalidArgument("load-schema requires 'name'");
      }
      if (req.document.empty()) {
        return Status::InvalidArgument("load-schema requires 'document'");
      }
      break;
    case ServeOp::kDecide:
      if (req.schema.empty()) {
        return Status::InvalidArgument("decide requires 'schema'");
      }
      if (req.query.empty() == req.query_text.empty()) {
        return Status::InvalidArgument(
            "decide requires exactly one of 'query' or 'query_text'");
      }
      break;
    case ServeOp::kRun:
      if (req.schema.empty()) {
        return Status::InvalidArgument("run requires 'schema'");
      }
      if (req.query.empty()) {
        return Status::InvalidArgument("run requires 'query'");
      }
      break;
  }
  return req;
}

std::string RenderServeError(std::string_view id, std::string_view code,
                             std::string_view detail) {
  std::string out = "{";
  if (!id.empty()) out += "\"id\":\"" + JsonEscape(id) + "\",";
  out += "\"ok\":false,\"error\":\"" + JsonEscape(code) + "\"";
  if (!detail.empty()) out += ",\"detail\":\"" + JsonEscape(detail) + "\"";
  out += "}\n";
  return out;
}

std::string RenderServeOk(std::string_view id, std::string_view body) {
  std::string out = "{";
  if (!id.empty()) out += "\"id\":\"" + JsonEscape(id) + "\",";
  out += "\"ok\":true";
  if (!body.empty()) {
    out += ",";
    out += body;
  }
  out += "}\n";
  return out;
}

}  // namespace rbda
