#include "serve/client.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

namespace rbda {

ServeClient::~ServeClient() {
  if (fd_ >= 0) close(fd_);
}

StatusOr<std::unique_ptr<ServeClient>> ServeClient::Connect(
    const std::string& host, uint16_t port, uint64_t timeout_ms) {
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::Unavailable("socket: " + std::string(strerror(errno)));

  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const std::string ip = host == "localhost" ? "127.0.0.1" : host;
  if (inet_pton(AF_INET, ip.c_str(), &addr.sin_addr) != 1) {
    close(fd);
    return Status::InvalidArgument("bad host '" + host + "'");
  }
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status s = Status::Unavailable("connect " + ip + ":" +
                                   std::to_string(port) + ": " +
                                   std::string(strerror(errno)));
    close(fd);
    return s;
  }
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return std::unique_ptr<ServeClient>(new ServeClient(fd, timeout_ms));
}

Status ServeClient::SendRaw(std::string_view bytes) {
  size_t off = 0;
  while (off < bytes.size()) {
    ssize_t n = write(fd_, bytes.data() + off, bytes.size() - off);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return Status::Unavailable("write: " + std::string(strerror(errno)));
  }
  return Status::Ok();
}

Status ServeClient::Send(std::string_view line) {
  std::string framed(line);
  if (framed.empty() || framed.back() != '\n') framed += '\n';
  return SendRaw(framed);
}

StatusOr<std::string> ServeClient::ReadLine(uint64_t timeout_ms) {
  if (timeout_ms == 0) timeout_ms = default_timeout_ms_;
  while (true) {
    size_t nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      std::string line = buffer_.substr(0, nl);
      buffer_.erase(0, nl + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return line;
    }
    pollfd p = {fd_, POLLIN, 0};
    int rc = poll(&p, 1, static_cast<int>(timeout_ms));
    if (rc == 0) return Status::DeadlineExceeded("read timed out");
    if (rc < 0) {
      if (errno == EINTR) continue;
      return Status::Unavailable("poll: " + std::string(strerror(errno)));
    }
    char buf[65536];
    ssize_t n = read(fd_, buf, sizeof(buf));
    if (n > 0) {
      buffer_.append(buf, static_cast<size_t>(n));
      continue;
    }
    if (n == 0) {
      return Status::Unavailable("connection closed by server");
    }
    if (errno == EINTR) continue;
    return Status::Unavailable("read: " + std::string(strerror(errno)));
  }
}

StatusOr<std::string> ServeClient::Call(std::string_view line,
                                        uint64_t timeout_ms) {
  RBDA_RETURN_IF_ERROR(Send(line));
  return ReadLine(timeout_ms);
}

void ServeClient::CloseWrite() { shutdown(fd_, SHUT_WR); }

}  // namespace rbda
