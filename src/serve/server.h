// The rbda_serve answerability daemon (docs/SERVING.md).
//
// One I/O thread owns every socket and runs a poll() loop; engine work
// (decide / run / load-schema) executes on the work-stealing TaskPool.
// Workers never touch sockets: a finished request appends its response to
// the connection's outbox and wakes the I/O thread through a self-pipe.
//
// Robustness properties (docs/ROBUSTNESS.md):
//   - Bounded admission: past AdmissionOptions::max_queue pending
//     requests the daemon sheds with an explicit `overloaded` response —
//     queue memory never grows with offered load.
//   - End-to-end deadlines: the per-request budget starts at arrival, so
//     queue wait counts; a request whose deadline expires while queued is
//     rejected at dequeue without touching the engine.
//   - Per-tenant caps and a per-schema CircuitBreaker bound what one
//     tenant or one pathological schema can consume.
//   - Defensive framing: malformed JSON is answered with `bad_request`,
//     oversized frames with `frame_too_large` + close, idle connections
//     are reaped, partial frames wait in a bounded buffer.
//   - Graceful drain: RequestDrain() (async-signal-safe) stops the
//     listener, answers new work `shutting_down`, lets every admitted
//     request finish or deadline out — each with a response — flushes,
//     and returns from Serve().
#ifndef RBDA_SERVE_SERVER_H_
#define RBDA_SERVE_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "base/status.h"
#include "base/task_pool.h"
#include "core/answerability.h"
#include "serve/admission.h"
#include "serve/protocol.h"
#include "serve/registry.h"

namespace rbda {

struct ServerOptions {
  std::string bind_address = "127.0.0.1";
  uint16_t port = 0;  // 0 = ephemeral; port() reports the bound port
  size_t jobs = 0;    // engine workers; 0 = ResolveJobs (RBDA_JOBS or 1)

  AdmissionOptions admission;
  CircuitBreakerOptions breaker;  // per-schema engine breaker

  size_t max_frame_bytes = 1 << 20;   // request line cap
  size_t max_outbox_bytes = 8 << 20;  // per-connection pending writes cap
  uint64_t idle_timeout_ms = 60000;   // reap silent connections
  uint64_t default_deadline_ms = 2000;
  uint64_t max_deadline_ms = 60000;  // client deadlines clamp to this
  uint64_t drain_timeout_ms = 30000;

  size_t cache_entries_per_shard = 8192;  // decision cache bound
  /// Honor the request field "debug_sleep_us" (tests manufacture slow
  /// requests with it). Off in production: a client must not be able to
  /// hold a worker by asking politely.
  bool enable_debug_sleep = false;

  DecisionOptions decide;  // engine budgets for every decide
};

class ServeServer {
 public:
  explicit ServeServer(const ServerOptions& options);
  ~ServeServer();

  ServeServer(const ServeServer&) = delete;
  ServeServer& operator=(const ServeServer&) = delete;

  /// Binds and listens. After Ok, port() is the bound port.
  Status Start();
  uint16_t port() const { return port_; }

  /// Runs the I/O loop on the calling thread until a drain completes.
  /// Returns Ok on a clean drain (every admitted request answered).
  Status Serve();

  /// Begins graceful drain. Thread-safe and async-signal-safe (an atomic
  /// store plus one write() on the self-pipe), so SIGTERM handlers may
  /// call it directly.
  void RequestDrain();

  bool draining() const {
    return drain_requested_.load(std::memory_order_relaxed);
  }

  // Introspection for tests and the /metrics flush.
  const AdmissionController& admission() const { return admission_; }
  SchemaRegistry& registry() { return registry_; }

 private:
  struct Conn;
  struct Metrics;

  uint64_t NowUs() const;
  void WakeIo();

  void AcceptNew();
  void HandleReadable(const std::shared_ptr<Conn>& conn);
  void HandleWritable(const std::shared_ptr<Conn>& conn);
  void HandleLine(const std::shared_ptr<Conn>& conn, std::string line,
                  uint64_t arrival_us);
  void Respond(const std::shared_ptr<Conn>& conn, std::string response);
  void CloseConn(const std::shared_ptr<Conn>& conn);
  bool OutboxesFlushed();

  // Worker-side execution of an admitted request.
  void ExecuteAdmitted(std::shared_ptr<Conn> conn, ServeRequest req,
                       uint64_t arrival_us, uint64_t deadline_us);
  std::string Dispatch(const ServeRequest& req);
  std::string DoLoadSchema(const ServeRequest& req);
  std::string DoDecide(const ServeRequest& req);
  std::string DoRun(const ServeRequest& req);
  std::string HealthBody();

  ServerOptions options_;
  AdmissionController admission_;
  SchemaRegistry registry_;
  DecisionCache cache_;
  std::unique_ptr<TaskPool> pool_;
  const Metrics* metrics_;

  int listen_fd_ = -1;
  int wake_r_ = -1;
  int wake_w_ = -1;
  uint16_t port_ = 0;
  std::chrono::steady_clock::time_point start_;

  std::atomic<bool> drain_requested_{false};
  bool drain_started_ = false;  // I/O thread only

  uint64_t next_conn_id_ = 1;                       // I/O thread only
  std::map<uint64_t, std::shared_ptr<Conn>> conns_;  // I/O thread only
};

}  // namespace rbda

#endif  // RBDA_SERVE_SERVER_H_
