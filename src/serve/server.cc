#include "serve/server.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <vector>

#include "core/plan_synthesis.h"
#include "core/proof_plans.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "parser/parser.h"
#include "runtime/access_selection.h"
#include "runtime/executor.h"

namespace rbda {

namespace {

Status Errno(const std::string& what) {
  return Status::Internal(what + ": " + std::string(strerror(errno)));
}

bool SetNonBlocking(int fd) {
  int flags = fcntl(fd, F_GETFL, 0);
  return flags >= 0 && fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

}  // namespace

/// Process-wide serve metric handles (docs/OBSERVABILITY.md).
struct ServeServer::Metrics {
  Counter* requests;
  Counter* shed_decide;
  Counter* shed_run;
  Counter* shed_load;
  Counter* deadline_in_queue;
  Counter* deadline_exceeded;
  Counter* tenant_rejects;
  Counter* breaker_rejects;
  Counter* bad_request;
  Counter* frames_oversized;
  Counter* idle_closed;
  Counter* cache_hits;
  Counter* cache_misses;
  Gauge* queue_depth;
  Gauge* connections;
  Distribution* decide_latency_us;
  Distribution* run_latency_us;
  Distribution* load_latency_us;

  static const Metrics* Get() {
    static const Metrics* m = [] {
      MetricsRegistry& r = MetricsRegistry::Default();
      auto* out = new Metrics{
          r.GetCounter("serve.requests"),
          r.GetCounter("serve.shed.decide"),
          r.GetCounter("serve.shed.run"),
          r.GetCounter("serve.shed.load-schema"),
          r.GetCounter("serve.deadline_in_queue"),
          r.GetCounter("serve.deadline_exceeded"),
          r.GetCounter("serve.tenant_rejects"),
          r.GetCounter("serve.breaker_rejects"),
          r.GetCounter("serve.bad_request"),
          r.GetCounter("serve.frames_oversized"),
          r.GetCounter("serve.idle_closed"),
          r.GetCounter("serve.cache.hits"),
          r.GetCounter("serve.cache.misses"),
          r.GetGauge("serve.queue.depth"),
          r.GetGauge("serve.connections"),
          r.GetDistribution("serve.latency.decide_us"),
          r.GetDistribution("serve.latency.run_us"),
          r.GetDistribution("serve.latency.load_us"),
      };
      return out;
    }();
    return m;
  }

  Counter* ShedFor(ServeOp op) const {
    switch (op) {
      case ServeOp::kRun:
        return shed_run;
      case ServeOp::kLoadSchema:
        return shed_load;
      default:
        return shed_decide;
    }
  }
};

/// One client connection. The fd and the input buffer belong to the I/O
/// thread; the outbox is the only worker-visible state, guarded by `mu`.
struct ServeServer::Conn {
  uint64_t id = 0;
  int fd = -1;
  std::string in;                 // partial frame(s), I/O thread only
  uint64_t last_activity_us = 0;  // I/O thread only
  bool close_after_flush = false;  // I/O thread only
  /// Requests admitted from this connection whose responses have not been
  /// enqueued yet. A half-closed connection (client EOF after sending)
  /// stays open until these are answered and flushed.
  std::atomic<size_t> pending{0};

  std::mutex mu;
  std::string out;      // bytes awaiting write
  bool closed = false;  // set once by the I/O thread at close

  /// Worker-safe response append. Returns false when the connection is
  /// gone or its outbox is saturated (slow reader: connection is doomed,
  /// dropping the response is the bounded-memory choice).
  bool Enqueue(std::string_view response, size_t max_outbox) {
    std::lock_guard<std::mutex> lock(mu);
    if (closed) return false;
    if (out.size() + response.size() > max_outbox) return false;
    out.append(response);
    return true;
  }
};

ServeServer::ServeServer(const ServerOptions& options)
    : options_(options),
      admission_(options.admission),
      registry_(options.breaker),
      cache_(options.cache_entries_per_shard),
      metrics_(Metrics::Get()),
      start_(std::chrono::steady_clock::now()) {}

ServeServer::~ServeServer() {
  pool_.reset();  // joins workers before conns_ goes away
  for (auto& [id, conn] : conns_) {
    std::lock_guard<std::mutex> lock(conn->mu);
    if (!conn->closed) {
      close(conn->fd);
      conn->closed = true;
    }
  }
  if (listen_fd_ >= 0) close(listen_fd_);
  if (wake_r_ >= 0) close(wake_r_);
  if (wake_w_ >= 0) close(wake_w_);
}

uint64_t ServeServer::NowUs() const {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start_)
          .count());
}

void ServeServer::WakeIo() {
  char byte = 1;
  // Best effort: a full pipe already guarantees a pending wakeup.
  ssize_t ignored = write(wake_w_, &byte, 1);
  (void)ignored;
}

Status ServeServer::Start() {
  int fds[2];
  if (pipe(fds) != 0) return Errno("pipe");
  wake_r_ = fds[0];
  wake_w_ = fds[1];
  if (!SetNonBlocking(wake_r_) || !SetNonBlocking(wake_w_)) {
    return Errno("fcntl(wake pipe)");
  }

  listen_fd_ = socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return Errno("socket");
  int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    return Status::InvalidArgument("bad bind address '" +
                                   options_.bind_address + "'");
  }
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return Errno("bind");
  }
  if (listen(listen_fd_, 128) != 0) return Errno("listen");
  if (!SetNonBlocking(listen_fd_)) return Errno("fcntl(listen)");

  socklen_t len = sizeof(addr);
  if (getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) !=
      0) {
    return Errno("getsockname");
  }
  port_ = ntohs(addr.sin_port);

  size_t jobs = std::max<size_t>(1, ResolveJobs(options_.jobs));
  pool_ = std::make_unique<TaskPool>(jobs);
  return Status::Ok();
}

void ServeServer::RequestDrain() {
  drain_requested_.store(true, std::memory_order_relaxed);
  WakeIo();
}

Status ServeServer::Serve() {
  if (listen_fd_ < 0) return Status::FailedPrecondition("Start() first");
  uint64_t drain_began_us = 0;
  while (true) {
    std::vector<pollfd> fds;
    std::vector<std::shared_ptr<Conn>> polled;
    fds.push_back({wake_r_, POLLIN, 0});
    const bool listener_polled = !drain_started_;
    if (listener_polled) fds.push_back({listen_fd_, POLLIN, 0});
    for (auto& [id, conn] : conns_) {
      // After client EOF, stop polling for input (it would signal
      // forever); the wake pipe covers response arrival.
      short events = conn->close_after_flush ? 0 : POLLIN;
      {
        std::lock_guard<std::mutex> lock(conn->mu);
        if (!conn->out.empty()) events |= POLLOUT;
      }
      fds.push_back({conn->fd, events, 0});
      polled.push_back(conn);
    }

    int timeout_ms = drain_started_ ? 10 : 1000;
    int rc = poll(fds.data(), fds.size(), timeout_ms);
    if (rc < 0 && errno != EINTR) return Errno("poll");

    if (fds[0].revents & POLLIN) {
      char buf[256];
      while (read(wake_r_, buf, sizeof(buf)) > 0) {
      }
    }

    if (drain_requested_.load(std::memory_order_relaxed) &&
        !drain_started_) {
      drain_started_ = true;
      drain_began_us = NowUs();
      close(listen_fd_);
      listen_fd_ = -1;
      TraceEventRecord("serve.drain",
                       {{"in_flight",
                         static_cast<int64_t>(admission_.in_flight())}},
                       {});
    }

    // `base` indexes the first connection entry in `fds`; it depends on
    // what was *polled*, not on the drain flag (which may have flipped
    // just above, after the array was built).
    size_t base = listener_polled ? 2 : 1;
    if (listener_polled && !drain_started_ && (fds[1].revents & POLLIN)) {
      AcceptNew();
    }
    for (size_t i = 0; i < polled.size(); ++i) {
      const pollfd& p = fds[base + i];
      const std::shared_ptr<Conn>& conn = polled[i];
      if (p.revents & (POLLERR | POLLHUP | POLLNVAL)) {
        // Flush what we can (a closing client may still read), then drop.
        HandleWritable(conn);
        CloseConn(conn);
        continue;
      }
      if (p.revents & POLLIN) HandleReadable(conn);
      if (p.revents & POLLOUT) HandleWritable(conn);
      bool outbox_empty;
      {
        std::lock_guard<std::mutex> lock(conn->mu);
        outbox_empty = conn->out.empty();
      }
      if (conn->close_after_flush && outbox_empty &&
          conn->pending.load(std::memory_order_acquire) == 0) {
        HandleWritable(conn);  // responses may have landed since the check
        CloseConn(conn);
      }
    }

    // Idle sweep (not during drain: drain closes everything at the end).
    if (!drain_started_ && options_.idle_timeout_ms > 0) {
      uint64_t now = NowUs();
      std::vector<std::shared_ptr<Conn>> idle;
      for (auto& [id, conn] : conns_) {
        if (now - conn->last_activity_us >
            options_.idle_timeout_ms * 1000) {
          idle.push_back(conn);
        }
      }
      for (const auto& conn : idle) {
        metrics_->idle_closed->Increment();
        CloseConn(conn);
      }
    }

    if (drain_started_) {
      bool timed_out = options_.drain_timeout_ms > 0 &&
                       NowUs() - drain_began_us >
                           options_.drain_timeout_ms * 1000;
      // in_flight hits zero only after every worker has enqueued its
      // response (Enqueue happens-before OnComplete), so checking the
      // outboxes afterwards cannot miss a response.
      if ((admission_.in_flight() == 0 && OutboxesFlushed()) || timed_out) {
        std::vector<std::shared_ptr<Conn>> all;
        for (auto& [id, conn] : conns_) all.push_back(conn);
        for (const auto& conn : all) CloseConn(conn);
        pool_->Wait();
        if (timed_out) {
          return Status::DeadlineExceeded("drain timed out");
        }
        return Status::Ok();
      }
    }
  }
}

bool ServeServer::OutboxesFlushed() {
  for (auto& [id, conn] : conns_) {
    HandleWritable(conn);
    std::lock_guard<std::mutex> lock(conn->mu);
    if (!conn->out.empty()) return false;
  }
  return true;
}

void ServeServer::AcceptNew() {
  while (true) {
    int fd = accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;  // EAGAIN or transient error: poll again
    if (!SetNonBlocking(fd)) {
      close(fd);
      continue;
    }
    int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_shared<Conn>();
    conn->id = next_conn_id_++;
    conn->fd = fd;
    conn->last_activity_us = NowUs();
    conns_[conn->id] = conn;
    metrics_->connections->Set(conns_.size());
  }
}

void ServeServer::CloseConn(const std::shared_ptr<Conn>& conn) {
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    if (conn->closed) return;
    conn->closed = true;
    close(conn->fd);
  }
  conns_.erase(conn->id);
  metrics_->connections->Set(conns_.size());
}

void ServeServer::HandleReadable(const std::shared_ptr<Conn>& conn) {
  char buf[65536];
  while (true) {
    ssize_t n = read(conn->fd, buf, sizeof(buf));
    if (n > 0) {
      conn->in.append(buf, static_cast<size_t>(n));
      if (conn->in.size() > options_.max_frame_bytes &&
          conn->in.find('\n') == std::string::npos) {
        // A frame larger than the cap: answer, then close — there is no
        // way to resynchronize without buffering the oversized line.
        metrics_->frames_oversized->Increment();
        Respond(conn, RenderServeError("", serve_error::kFrameTooLarge,
                                       "request frame exceeds " +
                                           std::to_string(
                                               options_.max_frame_bytes) +
                                           " bytes"));
        conn->in.clear();
        conn->close_after_flush = true;
        return;
      }
      continue;
    }
    if (n == 0) {  // EOF: answer what was framed, then close
      conn->close_after_flush = true;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    CloseConn(conn);
    return;
  }
  conn->last_activity_us = NowUs();

  size_t start = 0;
  while (true) {
    size_t nl = conn->in.find('\n', start);
    if (nl == std::string::npos) break;
    std::string line = conn->in.substr(start, nl - start);
    start = nl + 1;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    if (line.size() > options_.max_frame_bytes) {
      metrics_->frames_oversized->Increment();
      Respond(conn, RenderServeError("", serve_error::kFrameTooLarge, ""));
      conn->close_after_flush = true;
      break;
    }
    HandleLine(conn, std::move(line), NowUs());
  }
  conn->in.erase(0, start);
}

void ServeServer::HandleWritable(const std::shared_ptr<Conn>& conn) {
  std::lock_guard<std::mutex> lock(conn->mu);
  if (conn->closed) return;
  while (!conn->out.empty()) {
    ssize_t n = write(conn->fd, conn->out.data(), conn->out.size());
    if (n > 0) {
      conn->out.erase(0, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    // EAGAIN: poll will retry. Hard errors surface as POLLERR/POLLHUP on
    // the next loop; either way stop writing now.
    break;
  }
}

void ServeServer::Respond(const std::shared_ptr<Conn>& conn,
                          std::string response) {
  conn->Enqueue(response, options_.max_outbox_bytes);
  // I/O thread calls this synchronously; an immediate flush attempt keeps
  // small responses off the next poll round.
  HandleWritable(conn);
}

std::string ServeServer::HealthBody() {
  JsonObjectWriter w;
  w.AddString("status", drain_started_ || draining() ? "draining"
                                                     : "serving");
  w.AddUint("schemas", registry_.size());
  w.AddUint("queue_depth", admission_.queue_depth());
  w.AddUint("in_flight", admission_.in_flight());
  w.AddUint("uptime_us", NowUs());
  std::string obj = w.ToJson();
  return "\"health\":" + obj;
}

void ServeServer::HandleLine(const std::shared_ptr<Conn>& conn,
                             std::string line, uint64_t arrival_us) {
  metrics_->requests->Increment();
  StatusOr<ServeRequest> parsed = ParseServeRequest(line);
  if (!parsed.ok()) {
    metrics_->bad_request->Increment();
    Respond(conn, RenderServeError("", serve_error::kBadRequest,
                                   parsed.status().message()));
    return;
  }
  ServeRequest req = std::move(*parsed);

  // Health and metrics answer inline on the I/O thread: they must stay
  // responsive under the very overload that fills the queue.
  if (req.op == ServeOp::kHealth) {
    Respond(conn, RenderServeOk(req.id, HealthBody()));
    return;
  }
  if (req.op == ServeOp::kMetrics) {
    Respond(conn,
            RenderServeOk(req.id, "\"metrics\":" +
                                      SnapshotToJson(
                                          MetricsRegistry::Default())));
    return;
  }

  if (drain_started_ || draining()) {
    Respond(conn, RenderServeError(req.id, serve_error::kShuttingDown,
                                   "daemon is draining"));
    return;
  }

  switch (admission_.TryAdmit(req.tenant)) {
    case AdmissionController::Verdict::kQueueFull: {
      metrics_->ShedFor(req.op)->Increment();
      metrics_->queue_depth->Set(admission_.queue_depth());
      TraceEventRecord(
          "serve.overload",
          {{"queue_depth",
            static_cast<int64_t>(admission_.queue_depth())}},
          {{"op", ServeOpName(req.op)}, {"tenant", req.tenant}});
      Respond(conn, RenderServeError(req.id, serve_error::kOverloaded,
                                     "admission queue full"));
      return;
    }
    case AdmissionController::Verdict::kTenantOverLimit: {
      metrics_->tenant_rejects->Increment();
      Respond(conn,
              RenderServeError(req.id, serve_error::kTenantOverLimit,
                               "tenant concurrency cap reached"));
      return;
    }
    case AdmissionController::Verdict::kAdmitted:
      break;
  }
  metrics_->queue_depth->Set(admission_.queue_depth());

  uint64_t deadline_ms = req.deadline_ms == 0 ? options_.default_deadline_ms
                                              : req.deadline_ms;
  deadline_ms = std::min(deadline_ms, options_.max_deadline_ms);
  uint64_t deadline_us = arrival_us + deadline_ms * 1000;
  conn->pending.fetch_add(1);
  pool_->Submit([this, conn, req = std::move(req), arrival_us,
                 deadline_us]() mutable {
    ExecuteAdmitted(std::move(conn), std::move(req), arrival_us,
                    deadline_us);
  });
}

void ServeServer::ExecuteAdmitted(std::shared_ptr<Conn> conn,
                                  ServeRequest req, uint64_t arrival_us,
                                  uint64_t deadline_us) {
  admission_.OnDequeue();
  metrics_->queue_depth->Set(admission_.queue_depth());

  std::string response;
  uint64_t now = NowUs();
  if (now > deadline_us) {
    // The budget died in the queue: reject without touching the engine.
    metrics_->deadline_in_queue->Increment();
    response = RenderServeError(req.id, serve_error::kDeadlineInQueue,
                                "deadline expired after " +
                                    std::to_string(now - arrival_us) +
                                    "us in queue");
  } else {
    if (options_.enable_debug_sleep && req.debug_sleep_us > 0) {
      usleep(static_cast<useconds_t>(
          std::min<uint64_t>(req.debug_sleep_us, 5000000)));
    }
    response = Dispatch(req);
    now = NowUs();
    if (now > deadline_us) {
      metrics_->deadline_exceeded->Increment();
      response = RenderServeError(
          req.id, serve_error::kDeadlineExceeded,
          "completed after " + std::to_string(now - arrival_us) +
              "us, budget was " +
              std::to_string(deadline_us - arrival_us) + "us");
    }
  }

  uint64_t latency = NowUs() - arrival_us;
  switch (req.op) {
    case ServeOp::kDecide:
      metrics_->decide_latency_us->Record(latency);
      break;
    case ServeOp::kRun:
      metrics_->run_latency_us->Record(latency);
      break;
    case ServeOp::kLoadSchema:
      metrics_->load_latency_us->Record(latency);
      break;
    default:
      break;
  }

  conn->Enqueue(response, options_.max_outbox_bytes);
  conn->pending.fetch_sub(1, std::memory_order_release);
  admission_.OnComplete(req.tenant);
  WakeIo();
}

std::string ServeServer::Dispatch(const ServeRequest& req) {
  switch (req.op) {
    case ServeOp::kLoadSchema:
      return DoLoadSchema(req);
    case ServeOp::kDecide:
      return DoDecide(req);
    case ServeOp::kRun:
      return DoRun(req);
    default:
      return RenderServeError(req.id, serve_error::kBadRequest,
                              "op not executable");
  }
}

std::string ServeServer::DoLoadSchema(const ServeRequest& req) {
  StatusOr<uint64_t> epoch = registry_.Load(req.name, req.document);
  if (!epoch.ok()) {
    return RenderServeError(req.id, serve_error::kBadRequest,
                            epoch.status().message());
  }
  JsonObjectWriter w;
  w.AddString("name", req.name);
  w.AddUint("epoch", *epoch);
  return RenderServeOk(req.id, "\"loaded\":" + w.ToJson());
}

std::string ServeServer::DoDecide(const ServeRequest& req) {
  std::shared_ptr<SchemaEntry> entry = registry_.Find(req.schema);
  if (entry == nullptr) {
    return RenderServeError(req.id, serve_error::kNotFound,
                            "schema '" + req.schema + "' is not loaded");
  }
  bool is_text = !req.query_text.empty();
  const std::string& query_key = is_text ? req.query_text : req.query;
  std::string key = DecisionCache::Key(entry->name, entry->epoch, query_key,
                                       is_text, req.finite, req.naive);
  std::string body;
  if (cache_.Lookup(key, &body)) {
    metrics_->cache_hits->Increment();
    return RenderServeOk(req.id, body + ",\"cached\":true");
  }
  metrics_->cache_misses->Increment();

  // Fresh Universe per request: interning is not thread-safe and a fresh
  // parse keeps term ids deterministic, so the global containment cache
  // hits across requests and across schemas (verdicts are
  // isomorphism-invariant).
  Universe universe;
  StatusOr<ParsedDocument> doc = ParseDocument(entry->text, &universe);
  if (!doc.ok()) {
    // The text parsed at load time; failure here is a daemon bug.
    return RenderServeError(req.id, serve_error::kEngineError,
                            doc.status().message());
  }

  ConjunctiveQuery query = ConjunctiveQuery::Boolean({});
  if (is_text) {
    StatusOr<ConjunctiveQuery> parsed_q =
        ParseQuery(req.query_text, &universe);
    if (!parsed_q.ok()) {
      return RenderServeError(req.id, serve_error::kBadRequest,
                              parsed_q.status().message());
    }
    query = std::move(*parsed_q);
  } else {
    auto it = doc->queries.find(req.query);
    if (it == doc->queries.end()) {
      return RenderServeError(req.id, serve_error::kUnknownQuery,
                              "schema '" + req.schema + "' has no query '" +
                                  req.query + "'");
    }
    query = it->second;
  }

  // The breaker guards the engine only: registry misses and client
  // mistakes above are not engine failures and must not trip it.
  if (!entry->AllowEngineCall(NowUs())) {
    metrics_->breaker_rejects->Increment();
    return RenderServeError(req.id, serve_error::kBreakerOpen,
                            "schema breaker is open");
  }

  ScopedProfileLabel profile_label("serve:" + req.schema + ":" + query_key);
  DecisionOptions options = options_.decide;
  options.force_naive = req.naive;
  StatusOr<Decision> d = [&]() -> StatusOr<Decision> {
    if (req.finite) {
      FrozenQuery frozen = FreezeQuery(query, &universe);
      DecisionOptions adjusted = options;
      adjusted.accessible_constants = frozen.accessible_constants;
      return DecideFiniteMonotoneAnswerability(doc->schema,
                                               frozen.boolean_q, adjusted);
    }
    return DecideQueryAnswerability(doc->schema, query, options);
  }();
  entry->RecordEngineOutcome(NowUs(), d.ok());
  if (!d.ok()) {
    return RenderServeError(req.id, serve_error::kEngineError,
                            d.status().message());
  }

  JsonObjectWriter w;
  w.AddString("verdict", AnswerabilityName(d->verdict));
  w.AddString("fragment", FragmentName(d->fragment));
  w.AddBool("complete", d->complete);
  w.AddString("procedure", d->procedure);
  if (!d->complete && d->exhausted != ChaseExhausted::kNone) {
    w.AddString("exhausted", ChaseExhaustedName(d->exhausted));
  }
  w.AddUint("chase_rounds", d->chase_rounds);
  w.AddUint("chase_facts", d->chase_facts);
  std::string obj = w.ToJson();
  body = "\"decision\":" + obj;
  cache_.Insert(key, body);
  return RenderServeOk(req.id, body + ",\"cached\":false");
}

std::string ServeServer::DoRun(const ServeRequest& req) {
  std::shared_ptr<SchemaEntry> entry = registry_.Find(req.schema);
  if (entry == nullptr) {
    return RenderServeError(req.id, serve_error::kNotFound,
                            "schema '" + req.schema + "' is not loaded");
  }
  FaultPlan faults;
  bool faulty = !req.faults.empty();
  if (faulty) {
    StatusOr<FaultPlan> parsed = ParseFaultSpec(req.faults);
    if (!parsed.ok()) {
      return RenderServeError(req.id, serve_error::kBadRequest,
                              parsed.status().message());
    }
    faults = std::move(*parsed);
  }

  Universe universe;
  StatusOr<ParsedDocument> doc = ParseDocument(entry->text, &universe);
  if (!doc.ok()) {
    return RenderServeError(req.id, serve_error::kEngineError,
                            doc.status().message());
  }
  auto it = doc->queries.find(req.query);
  if (it == doc->queries.end()) {
    return RenderServeError(req.id, serve_error::kUnknownQuery,
                            "schema '" + req.schema + "' has no query '" +
                                req.query + "'");
  }

  if (!entry->AllowEngineCall(NowUs())) {
    metrics_->breaker_rejects->Increment();
    return RenderServeError(req.id, serve_error::kBreakerOpen,
                            "schema breaker is open");
  }

  StatusOr<Plan> plan = ExtractPlanFromProof(doc->schema, it->second);
  if (!plan.ok()) plan = SynthesizeUniversalPlan(doc->schema, it->second);
  if (!plan.ok()) {
    entry->RecordEngineOutcome(NowUs(), false);
    return RenderServeError(req.id, serve_error::kEngineError,
                            "no plan: " + plan.status().message());
  }

  auto selector =
      MakeIdempotent(MakeSelector(SelectionPolicy::kFirstK, req.seed));
  InstanceService backend(doc->data, selector.get());
  VirtualClock clock;
  FaultInjectingService faulty_service(&backend, faults, &clock);
  PlanExecutor executor(doc->schema,
                        faulty ? static_cast<Service*>(&faulty_service)
                               : &backend,
                        &clock);
  StatusOr<ExecutionResult> out = executor.Run(*plan);
  entry->RecordEngineOutcome(NowUs(), out.ok());
  if (!out.ok()) {
    return RenderServeError(req.id, serve_error::kEngineError,
                            out.status().message());
  }

  JsonObjectWriter w;
  w.AddUint("tuples", out->table.size());
  w.AddUint("accesses", executor.stats().accesses);
  w.AddBool("partial", out->partial);
  return RenderServeOk(req.id, "\"run\":" + w.ToJson());
}

}  // namespace rbda
