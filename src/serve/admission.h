// Bounded admission control for rbda_serve (docs/SERVING.md,
// docs/ROBUSTNESS.md). The work queue itself lives in the TaskPool; this
// controller is the gate in front of it, so the daemon's queue memory is
// bounded no matter how fast requests arrive: past `max_queue` pending
// requests, admission fails and the caller sheds the request with an
// explicit `overloaded` response instead of growing the queue.
//
// Per-tenant caps bound how much of the daemon one tenant can occupy:
// a tenant may have at most `per_tenant_inflight` requests admitted
// (queued + executing) at once. The cap rejects the *tenant*, not the
// daemon — other tenants keep being admitted.
#ifndef RBDA_SERVE_ADMISSION_H_
#define RBDA_SERVE_ADMISSION_H_

#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

namespace rbda {

struct AdmissionOptions {
  size_t max_queue = 512;          // pending (admitted, not yet executing)
  size_t per_tenant_inflight = 128;  // queued + executing, per tenant
};

class AdmissionController {
 public:
  enum class Verdict { kAdmitted, kQueueFull, kTenantOverLimit };

  explicit AdmissionController(AdmissionOptions options)
      : options_(options) {}

  /// Gate for one request. kAdmitted increments the queue depth and the
  /// tenant's in-flight count; the caller must pair it with exactly one
  /// OnDequeue and one OnComplete.
  Verdict TryAdmit(const std::string& tenant);

  /// The admitted request left the queue and started executing (or was
  /// rejected at dequeue for an expired deadline — still call both).
  void OnDequeue();

  /// The admitted request finished (response enqueued).
  void OnComplete(const std::string& tenant);

  size_t queue_depth() const;
  /// Admitted and not yet complete (queued + executing).
  size_t in_flight() const;

  /// Blocks until every admitted request has completed. Drain calls this
  /// after closing the listener; workers finishing their tail of work
  /// wake it.
  void WaitIdle();

 private:
  AdmissionOptions options_;
  mutable std::mutex mu_;
  std::condition_variable idle_cv_;
  size_t queued_ = 0;
  size_t in_flight_ = 0;
  std::map<std::string, size_t> tenant_inflight_;
};

}  // namespace rbda

#endif  // RBDA_SERVE_ADMISSION_H_
