// Minimal blocking client for the rbda_serve line protocol, shared by the
// daemon's tests and the rbda_workload --target driver. One connection,
// newline framing, optional per-read timeout. Not thread-safe; drivers
// open one client per concurrent stream.
#ifndef RBDA_SERVE_CLIENT_H_
#define RBDA_SERVE_CLIENT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "base/status.h"

namespace rbda {

class ServeClient {
 public:
  ~ServeClient();

  ServeClient(const ServeClient&) = delete;
  ServeClient& operator=(const ServeClient&) = delete;

  /// Connects to host:port (host is an IPv4 literal or "localhost").
  static StatusOr<std::unique_ptr<ServeClient>> Connect(
      const std::string& host, uint16_t port, uint64_t timeout_ms = 5000);

  /// Writes one request line ('\n' appended when missing).
  Status Send(std::string_view line);

  /// Reads the next response line, waiting at most `timeout_ms`
  /// (0 = the connect timeout). EOF mid-stream is an Unavailable error;
  /// the string never includes the '\n'.
  StatusOr<std::string> ReadLine(uint64_t timeout_ms = 0);

  /// Send + ReadLine, the common closed-loop call.
  StatusOr<std::string> Call(std::string_view line,
                             uint64_t timeout_ms = 0);

  /// Sends raw bytes without framing — for protocol-abuse probes
  /// (oversized frames, partial frames).
  Status SendRaw(std::string_view bytes);

  /// Half-close: no more requests, responses still readable.
  void CloseWrite();

  int fd() const { return fd_; }

 private:
  ServeClient(int fd, uint64_t timeout_ms)
      : fd_(fd), default_timeout_ms_(timeout_ms) {}

  int fd_;
  uint64_t default_timeout_ms_;
  std::string buffer_;
};

}  // namespace rbda

#endif  // RBDA_SERVE_CLIENT_H_
