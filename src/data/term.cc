#include "data/term.h"

// Term is header-only; this file anchors the library target.
