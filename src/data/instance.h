// Facts and instances.
//
// An instance is a finite set of facts R(t1..tn). Instances are the common
// currency of the whole library: query evaluation, the chase, plan
// execution, and the simulated services all operate on Instance.
//
// Storage is packed and columnar: each relation's facts live in a
// RelationStore — fixed-arity rows of 64-bit Term words in block-allocated
// arenas, deduplicated by an open-addressed hash over the row words, with
// per-relation column postings driving the positional index
// (relation, position, term) -> row ids that homomorphism search and chase
// trigger enumeration probe. A fact is stored once; FactsOf hands out
// borrowed row views (FactRef) instead of copies.
//
// For semi-naive (delta-driven) evaluation the instance also tracks how it
// grows: per-relation row arenas are append-only, so a DeltaMark — a
// snapshot of the per-relation sizes plus the structural-rebuild counter —
// identifies exactly the facts added since the snapshot. ReplaceTerm (EGD
// merges) rebuilds the arenas and bumps the rebuild counter, which
// invalidates every outstanding mark; callers must fall back to full
// evaluation after a rebuild (see MarkValid).
//
// Row ids are 32-bit and checked: growth past the id space surfaces as a
// Status from TryAddFact/TryAddRow (the plain AddFact aborts loudly), never
// as silent truncation.
#ifndef RBDA_DATA_INSTANCE_H_
#define RBDA_DATA_INSTANCE_H_

#include <span>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "base/status.h"
#include "data/fact_store.h"
#include "data/term.h"
#include "data/universe.h"

namespace rbda {

/// An owned fact (or, structurally, an atom whose arguments may be
/// variables — see logic/homomorphism.h). The instance does not store
/// Facts; it packs their terms into row arenas. Fact remains the owned
/// currency for atoms, service results, and call sites that outlive the
/// instance they read from.
struct Fact {
  RelationId relation = 0;
  std::vector<Term> args;

  Fact() = default;
  Fact(RelationId r, std::vector<Term> a) : relation(r), args(std::move(a)) {}
  /// Materializes a borrowed row view into an owned Fact.
  explicit Fact(const FactRef& ref)
      : relation(ref.relation()),
        args(ref.args().begin(), ref.args().end()) {}

  bool operator==(const Fact& o) const {
    return relation == o.relation && args == o.args;
  }
  bool operator<(const Fact& o) const {
    if (relation != o.relation) return relation < o.relation;
    return args < o.args;
  }
};

struct FactHash {
  size_t operator()(const Fact& f) const {
    uint64_t h = 0x9e3779b97f4a7c15ULL ^ f.relation;
    for (const Term& t : f.args) {
      h ^= TermHash()(t) + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    }
    return static_cast<size_t>(h);
  }
};

using TermSet = std::unordered_set<Term, TermHash>;

class Instance {
 public:
  /// A point-in-time snapshot of the instance's growth state, for
  /// semi-naive delta evaluation: the facts of `relation` appended after
  /// the mark are exactly FactsOf(relation)[DeltaBegin(mark, relation)..].
  /// A mark is invalidated by structural rebuilds (ReplaceTerm); check
  /// MarkValid before using DeltaBegin. Sizes are stored untruncated; the
  /// checked 32-bit row-id guard keeps every recorded size below 2^32.
  struct DeltaMark {
    uint64_t rebuilds = 0;
    uint64_t generation = 0;  // generation() at mark time; the delta holds
                              // generation() - generation facts
    std::unordered_map<RelationId, uint64_t> sizes;
  };

  /// Adds a fact; returns true if it was not already present. Aborts
  /// (loudly, never silently truncating) if the relation's checked row-id
  /// space is exhausted — budget-bounded callers on the hot path use
  /// TryAddFact/TryAddRow and get a Status instead.
  bool AddFact(const Fact& fact) {
    return AddRowChecked(fact.relation, fact.args.data(),
                         static_cast<uint32_t>(fact.args.size()));
  }
  /// Rvalue overload: the packed store reads the terms in place, so a
  /// spent Fact is never copied into storage (the old representation
  /// copied it twice more).
  bool AddFact(Fact&& fact) {
    return AddRowChecked(fact.relation, fact.args.data(),
                         static_cast<uint32_t>(fact.args.size()));
  }
  bool AddFact(RelationId relation, const std::vector<Term>& args) {
    return AddRowChecked(relation, args.data(),
                         static_cast<uint32_t>(args.size()));
  }
  /// Adds a borrowed row view (possibly from another instance).
  bool AddFact(const FactRef& ref) {
    return AddRowChecked(ref.relation(), ref.args().data(), ref.arity());
  }
  /// Adds a packed row directly — the zero-materialization entry point for
  /// rebuilds and term-remapping hot paths.
  bool AddRow(RelationId relation, std::span<const Term> row) {
    return AddRowChecked(relation, row.data(),
                         static_cast<uint32_t>(row.size()));
  }

  /// Status-returning variants: kResourceExhausted once the relation's row
  /// count would pass the checked 32-bit id space (2^32 - 1 rows, or the
  /// lowered testing limit), kInvalidArgument on an arity mismatch with
  /// the relation's existing rows. On success *inserted reports whether
  /// the fact was new.
  Status TryAddFact(const Fact& fact, bool* inserted) {
    return TryAddRow(fact.relation,
                     {fact.args.data(), fact.args.size()}, inserted);
  }
  Status TryAddRow(RelationId relation, std::span<const Term> row,
                   bool* inserted);

  bool Contains(const Fact& fact) const {
    return ContainsRow(fact.relation,
                       {fact.args.data(), fact.args.size()});
  }
  bool ContainsRow(RelationId relation, std::span<const Term> row) const;

  /// All facts over `relation`, as a random-access view of packed rows
  /// (empty view if none). Row views stay valid across appends; a
  /// structural rebuild (ReplaceTerm/ReplaceTerms) invalidates them.
  FactRange FactsOf(RelationId relation) const;

  /// Relations that currently have at least one fact.
  std::vector<RelationId> PopulatedRelations() const;

  /// Indexes of facts of `relation` whose argument at `position` is
  /// `term`, ascending. The returned indexes refer to FactsOf(relation).
  const std::vector<uint32_t>& FactsWith(RelationId relation,
                                         uint32_t position, Term term) const;

  /// All terms occurring in facts.
  TermSet ActiveDomain() const;

  /// Adds every fact of `other` into this instance.
  void UnionWith(const Instance& other);

  /// True if every fact of this instance is in `other`. Short-circuits on
  /// the first missing fact.
  bool IsSubinstanceOf(const Instance& other) const;

  /// Replaces every occurrence of `from` by `to`, merging duplicate facts.
  /// Used by EGD (functional dependency) chase steps.
  void ReplaceTerm(Term from, Term to);

  /// Applies `mapping` to every term occurrence in one rebuild (terms not
  /// in the mapping are kept), merging duplicate facts. Equivalent to a
  /// sequence of ReplaceTerm calls over an idempotent mapping, but costs a
  /// single rebuild — the FD-repair worklist in the chase relies on this.
  /// Rows are remapped arena-to-arena; no per-fact heap nodes are built.
  void ReplaceTerms(const std::unordered_map<Term, Term, TermHash>& mapping);

  /// Restricts the instance to the given relations, dropping all others.
  /// Surviving relations keep their row order (arenas are copied whole).
  Instance RestrictTo(const std::unordered_set<RelationId>& relations) const;

  size_t NumFacts() const { return static_cast<size_t>(total_rows_); }
  bool Empty() const { return total_rows_ == 0; }

  /// Monotonic count of successful AddFact calls (also bumped once per
  /// structural rebuild so it never repeats a value for different states).
  uint64_t generation() const { return generation_; }

  /// Count of structural rebuilds (ReplaceTerm / ReplaceTerms calls that
  /// changed anything). A rebuild reorders the per-relation row arenas,
  /// so it invalidates every DeltaMark taken before it.
  uint64_t rebuilds() const { return rebuilds_; }

  /// Snapshots the current growth state.
  DeltaMark Mark() const;

  /// True if no structural rebuild happened since `mark` was taken, i.e.
  /// DeltaBegin ranges computed against it are meaningful.
  bool MarkValid(const DeltaMark& mark) const {
    return mark.rebuilds == rebuilds_;
  }

  /// First index into FactsOf(relation) of the facts appended since
  /// `mark`. Requires MarkValid(mark). The uint32_t return cannot
  /// truncate: the checked row-id guard caps every arena below 2^32 rows.
  uint32_t DeltaBegin(const DeltaMark& mark, RelationId relation) const;

  /// Iteration over all facts, relation by relation in first-insertion
  /// order (deterministic for a given construction sequence). The callback
  /// receives borrowed FactRef row views.
  template <typename Fn>
  void ForEachFact(Fn&& fn) const {
    for (RelationId rel : relation_order_) {
      for (FactRef f : FactsOf(rel)) fn(f);
    }
  }

  /// Short-circuiting iteration: `fn` returns false to stop. Returns true
  /// if every fact was visited (i.e. no callback returned false).
  template <typename Fn>
  bool ForEachFactUntil(Fn&& fn) const {
    for (RelationId rel : relation_order_) {
      for (FactRef f : FactsOf(rel)) {
        if (!fn(f)) return false;
      }
    }
    return true;
  }

  /// Approximate heap footprint of the packed storage, in bytes.
  size_t MemoryBytes() const;

  /// Lowers the per-relation checked row-id limit so tests can exercise
  /// the overflow guard without allocating 2^32 rows. Applies to existing
  /// and future relations; values above RelationStore::kMaxRows clamp.
  void SetMaxRowsPerRelationForTesting(uint64_t max_rows);

  /// Deterministic sorted dump, one fact per line, for tests and
  /// debugging.
  std::string ToString(const Universe& universe) const;

  bool operator==(const Instance& o) const {
    return total_rows_ == o.total_rows_ && IsSubinstanceOf(o);
  }

 private:
  bool AddRowChecked(RelationId relation, const Term* row, uint32_t arity);
  RelationStore* StoreFor(RelationId relation, uint32_t arity);
  const RelationStore* FindStore(RelationId relation) const;

  // References into the map are stable across rehash, so FactRange views
  // survive unrelated relations being added. relation_order_ records
  // first-insertion order for deterministic whole-instance iteration.
  std::unordered_map<RelationId, RelationStore> stores_;
  std::vector<RelationId> relation_order_;
  uint64_t total_rows_ = 0;
  uint64_t generation_ = 0;
  uint64_t rebuilds_ = 0;
  uint64_t max_rows_per_relation_ = RelationStore::kMaxRows;
};

/// Renders one fact, e.g. "Prof(p1, alice, 10000)".
std::string FactToString(const Fact& fact, const Universe& universe);

}  // namespace rbda

#endif  // RBDA_DATA_INSTANCE_H_
