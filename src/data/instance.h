// Facts and instances.
//
// An instance is a finite set of facts R(t1..tn). Instances are the common
// currency of the whole library: query evaluation, the chase, plan
// execution, and the simulated services all operate on Instance.
//
// The instance maintains a positional index (relation, position, term) ->
// facts, which drives homomorphism search and chase trigger enumeration.
//
// For semi-naive (delta-driven) evaluation the instance also tracks how it
// grows: per-relation fact vectors are append-only, so a DeltaMark — a
// snapshot of the per-relation sizes plus the structural-rebuild counter —
// identifies exactly the facts added since the snapshot. ReplaceTerm (EGD
// merges) rebuilds the fact vectors and bumps the rebuild counter, which
// invalidates every outstanding mark; callers must fall back to full
// evaluation after a rebuild (see MarkValid).
#ifndef RBDA_DATA_INSTANCE_H_
#define RBDA_DATA_INSTANCE_H_

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "data/term.h"
#include "data/universe.h"

namespace rbda {

struct Fact {
  RelationId relation = 0;
  std::vector<Term> args;

  Fact() = default;
  Fact(RelationId r, std::vector<Term> a) : relation(r), args(std::move(a)) {}

  bool operator==(const Fact& o) const {
    return relation == o.relation && args == o.args;
  }
  bool operator<(const Fact& o) const {
    if (relation != o.relation) return relation < o.relation;
    return args < o.args;
  }
};

struct FactHash {
  size_t operator()(const Fact& f) const {
    uint64_t h = 0x9e3779b97f4a7c15ULL ^ f.relation;
    for (const Term& t : f.args) {
      h ^= TermHash()(t) + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    }
    return static_cast<size_t>(h);
  }
};

using TermSet = std::unordered_set<Term, TermHash>;

class Instance {
 public:
  /// A point-in-time snapshot of the instance's growth state, for
  /// semi-naive delta evaluation: the facts of `relation` appended after
  /// the mark are exactly FactsOf(relation)[DeltaBegin(mark, relation)..].
  /// A mark is invalidated by structural rebuilds (ReplaceTerm); check
  /// MarkValid before using DeltaBegin.
  struct DeltaMark {
    uint64_t rebuilds = 0;
    uint64_t generation = 0;  // generation() at mark time; the delta holds
                              // generation() - generation facts
    std::unordered_map<RelationId, uint32_t> sizes;
  };

  /// Adds a fact; returns true if it was not already present.
  bool AddFact(const Fact& fact);
  bool AddFact(RelationId relation, std::vector<Term> args) {
    return AddFact(Fact(relation, std::move(args)));
  }

  bool Contains(const Fact& fact) const { return all_.count(fact) > 0; }

  /// All facts over `relation` (empty vector if none).
  const std::vector<Fact>& FactsOf(RelationId relation) const;

  /// Relations that currently have at least one fact.
  std::vector<RelationId> PopulatedRelations() const;

  /// Indexes of facts of `relation` whose argument at `position` is `term`.
  /// The returned indexes refer to FactsOf(relation).
  const std::vector<uint32_t>& FactsWith(RelationId relation, uint32_t position,
                                         Term term) const;

  /// All terms occurring in facts.
  TermSet ActiveDomain() const;

  /// Adds every fact of `other` into this instance.
  void UnionWith(const Instance& other);

  /// True if every fact of this instance is in `other`.
  bool IsSubinstanceOf(const Instance& other) const;

  /// Replaces every occurrence of `from` by `to`, merging duplicate facts.
  /// Used by EGD (functional dependency) chase steps.
  void ReplaceTerm(Term from, Term to);

  /// Applies `mapping` to every term occurrence in one rebuild (terms not
  /// in the mapping are kept), merging duplicate facts. Equivalent to a
  /// sequence of ReplaceTerm calls over an idempotent mapping, but costs a
  /// single rebuild — the FD-repair worklist in the chase relies on this.
  void ReplaceTerms(const std::unordered_map<Term, Term, TermHash>& mapping);

  /// Restricts the instance to the given relations, dropping all others.
  Instance RestrictTo(const std::unordered_set<RelationId>& relations) const;

  size_t NumFacts() const { return all_.size(); }
  bool Empty() const { return all_.empty(); }

  /// Monotonic count of successful AddFact calls (also bumped once per
  /// structural rebuild so it never repeats a value for different states).
  uint64_t generation() const { return generation_; }

  /// Count of structural rebuilds (ReplaceTerm / ReplaceTerms calls that
  /// changed anything). A rebuild reorders the per-relation fact vectors,
  /// so it invalidates every DeltaMark taken before it.
  uint64_t rebuilds() const { return rebuilds_; }

  /// Snapshots the current growth state.
  DeltaMark Mark() const;

  /// True if no structural rebuild happened since `mark` was taken, i.e.
  /// DeltaBegin ranges computed against it are meaningful.
  bool MarkValid(const DeltaMark& mark) const {
    return mark.rebuilds == rebuilds_;
  }

  /// First index into FactsOf(relation) of the facts appended since
  /// `mark`. Requires MarkValid(mark).
  uint32_t DeltaBegin(const DeltaMark& mark, RelationId relation) const;

  /// Iteration over all facts, relation by relation.
  template <typename Fn>
  void ForEachFact(Fn&& fn) const {
    for (const auto& [rel, facts] : by_relation_) {
      for (const Fact& f : facts) fn(f);
    }
  }

  /// Deterministic sorted dump, one fact per line, for tests and debugging.
  std::string ToString(const Universe& universe) const;

  bool operator==(const Instance& o) const { return all_ == o.all_; }

 private:
  std::unordered_set<Fact, FactHash> all_;
  std::unordered_map<RelationId, std::vector<Fact>> by_relation_;
  // (relation, position, term) -> indexes into by_relation_[relation].
  struct IndexKey {
    RelationId relation;
    uint32_t position;
    Term term;
    bool operator==(const IndexKey& o) const {
      return relation == o.relation && position == o.position &&
             term == o.term;
    }
  };
  struct IndexKeyHash {
    size_t operator()(const IndexKey& k) const {
      uint64_t h = TermHash()(k.term);
      h ^= (static_cast<uint64_t>(k.relation) << 32) | k.position;
      h *= 0xbf58476d1ce4e5b9ULL;
      return static_cast<size_t>(h ^ (h >> 29));
    }
  };
  std::unordered_map<IndexKey, std::vector<uint32_t>, IndexKeyHash> index_;
  uint64_t generation_ = 0;
  uint64_t rebuilds_ = 0;
};

/// Renders one fact, e.g. "Prof(p1, alice, 10000)".
std::string FactToString(const Fact& fact, const Universe& universe);

}  // namespace rbda

#endif  // RBDA_DATA_INSTANCE_H_
