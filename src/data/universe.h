// The Universe owns all interned names for one reasoning context:
// relation symbols (with arities), constant names, variable names, and the
// counter used to mint fresh labeled nulls and fresh variables.
//
// Schemas produced by transformations (existence-check / FD / choice
// simplification, the AMonDet reduction) share the Universe of the original
// schema, so terms and relation ids remain comparable across the pipeline.
#ifndef RBDA_DATA_UNIVERSE_H_
#define RBDA_DATA_UNIVERSE_H_

#include <string>
#include <string_view>
#include <vector>

#include "base/status.h"
#include "base/symbol_table.h"
#include "data/term.h"

namespace rbda {

using RelationId = uint32_t;

class Universe {
 public:
  /// Interns relation `name` with the given arity. If the relation already
  /// exists, the arity must match.
  StatusOr<RelationId> AddRelation(std::string_view name, uint32_t arity);

  /// Looks up a relation by name.
  bool LookupRelation(std::string_view name, RelationId* id) const;

  uint32_t Arity(RelationId r) const {
    RBDA_DCHECK(r < arities_.size());
    return arities_[r];
  }
  const std::string& RelationName(RelationId r) const {
    return relations_.NameOf(r);
  }
  size_t NumRelations() const { return arities_.size(); }

  /// Interns a constant / variable by name.
  Term Constant(std::string_view name) {
    return Term::Constant(constants_.Intern(name));
  }
  Term Variable(std::string_view name) {
    return Term::Variable(variables_.Intern(name));
  }

  /// Mints a fresh labeled null (for chase witnesses).
  Term FreshNull() { return Term::Null(next_null_++); }

  /// Mints a fresh variable, guaranteed not to collide with interned names.
  Term FreshVariable();

  /// Renders a term using this universe's name tables.
  std::string TermName(Term t) const;

  size_t NumConstants() const { return constants_.size(); }
  size_t NumNullsMinted() const { return next_null_; }

 private:
  SymbolTable relations_;
  std::vector<uint32_t> arities_;
  SymbolTable constants_;
  SymbolTable variables_;
  uint32_t next_null_ = 0;
  uint32_t fresh_var_counter_ = 0;
};

}  // namespace rbda

#endif  // RBDA_DATA_UNIVERSE_H_
