// Packed columnar storage for one relation's facts.
//
// A RelationStore keeps every fact of a single relation as a fixed-arity
// row of 64-bit Term words in block-allocated contiguous arenas (the vlog
// chasemgmt idiom): rows never move once written, so row pointers handed
// out to homomorphism search stay valid across appends, and a row costs
// exactly arity words — no per-fact heap node, no per-fact vector header.
//
// Layout:
//   - Arena: blocks of kRowsPerBlock rows; row i lives at
//     blocks_[i >> kRowsPerBlockLog2] + (i & kRowsPerBlockMask) * arity.
//   - Dedup: an open-addressed, linear-probed hash table of row ids over
//     the row words (no stored keys — probes compare the arena rows
//     directly), replacing the old unordered_set<Fact> and its third copy
//     of every fact.
//   - Column postings: per (position, term) lists of row ids, which drive
//     positional index lookups (Instance::FactsWith).
//
// Row ids are 32-bit and checked: Insert returns kResourceExhausted once
// the relation would exceed the id space (2^32 - 1 rows; UINT32_MAX is the
// empty-slot sentinel) instead of silently truncating. The limit can be
// lowered per store to make the guard testable.
#ifndef RBDA_DATA_FACT_STORE_H_
#define RBDA_DATA_FACT_STORE_H_

#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "base/status.h"
#include "data/term.h"
#include "data/universe.h"

namespace rbda {

class RelationStore {
 public:
  static constexpr uint32_t kRowsPerBlockLog2 = 10;
  static constexpr uint32_t kRowsPerBlock = 1u << kRowsPerBlockLog2;
  static constexpr uint32_t kRowsPerBlockMask = kRowsPerBlock - 1;
  /// Largest admissible row count: ids are uint32_t and UINT32_MAX is the
  /// dedup table's empty-slot sentinel.
  static constexpr uint64_t kMaxRows = 0xFFFFFFFFull;

  RelationStore(RelationId relation, uint32_t arity,
                uint64_t max_rows = kMaxRows)
      : relation_(relation), arity_(arity), max_rows_(max_rows) {}

  // Deep-copied: Instance is a value type (chase results, certificates and
  // services all copy instances), so its stores must copy too.
  RelationStore(const RelationStore& other);
  RelationStore& operator=(const RelationStore& other);
  RelationStore(RelationStore&&) = default;
  RelationStore& operator=(RelationStore&&) = default;

  RelationId relation() const { return relation_; }
  uint32_t arity() const { return arity_; }
  uint64_t size() const { return num_rows_; }

  /// Lowers (or restores) the checked row-id limit; used by tests to
  /// exercise the overflow guard without allocating 2^32 rows.
  void set_max_rows(uint64_t max_rows) { max_rows_ = max_rows; }

  /// Pointer to row `i`'s `arity()` contiguous Term words. Stable across
  /// later Inserts (blocks never move or grow).
  const Term* Row(uint64_t i) const {
    RBDA_DCHECK(i < num_rows_);
    return blocks_[i >> kRowsPerBlockLog2].get() +
           (i & kRowsPerBlockMask) * arity_;
  }

  /// Inserts the row if absent. Sets *id to the row's id (new or existing)
  /// and *inserted accordingly. Fails with kResourceExhausted — leaving
  /// the store untouched — when a new row would exceed the id space.
  Status Insert(const Term* row, uint32_t* id, bool* inserted);

  /// Looks the row up without inserting.
  bool Find(const Term* row, uint32_t* id) const;

  /// Row ids whose argument at `position` is `term` (ascending; empty list
  /// if none). Valid while the store lives; appends may grow it.
  const std::vector<uint32_t>& Postings(uint32_t position, Term term) const;

  /// Approximate heap footprint in bytes (arena blocks + dedup table +
  /// posting lists), for memory accounting in benches.
  size_t MemoryBytes() const;

 private:
  uint64_t HashRow(const Term* row) const;
  bool RowEquals(uint64_t id, const Term* row) const;
  // Probes for `row`; returns the slot holding its id or the empty slot
  // where it belongs. Requires a non-empty table.
  size_t ProbeSlot(const Term* row) const;
  void GrowTable();

  RelationId relation_ = 0;
  uint32_t arity_ = 0;
  uint64_t num_rows_ = 0;
  uint64_t max_rows_ = kMaxRows;
  std::vector<std::unique_ptr<Term[]>> blocks_;
  // Open-addressed dedup table: slots hold row ids, kEmptySlot when free.
  // Sized to a power of two, grown at kMaxLoadPercent occupancy.
  static constexpr uint32_t kEmptySlot = 0xFFFFFFFFu;
  static constexpr size_t kInitialSlots = 16;
  static constexpr uint64_t kMaxLoadPercent = 70;
  std::vector<uint32_t> slots_;
  // Column postings: postings_[position][term.raw()] = ascending row ids.
  std::vector<std::unordered_map<uint64_t, std::vector<uint32_t>>> postings_;
};

/// A borrowed view of one stored fact: the relation plus a pointer into
/// the row arena. Cheap to copy; valid while the owning Instance lives and
/// is not structurally rebuilt (ReplaceTerm/ReplaceTerms).
class FactRef {
 public:
  FactRef() = default;
  FactRef(RelationId relation, const Term* row, uint32_t arity)
      : row_(row), relation_(relation), arity_(arity) {}

  RelationId relation() const { return relation_; }
  uint32_t arity() const { return arity_; }
  Term arg(uint32_t p) const {
    RBDA_DCHECK(p < arity_);
    return row_[p];
  }
  Term operator[](uint32_t p) const { return arg(p); }
  /// The row's arguments as a contiguous span of packed Term words.
  std::span<const Term> args() const { return {row_, arity_}; }

 private:
  const Term* row_ = nullptr;
  RelationId relation_ = 0;
  uint32_t arity_ = 0;
};

/// Random-access range over one relation's rows (the result of
/// Instance::FactsOf). A value type: copies are views of the same store.
class FactRange {
 public:
  FactRange() = default;
  explicit FactRange(const RelationStore* store) : store_(store) {}

  size_t size() const { return store_ == nullptr ? 0 : store_->size(); }
  bool empty() const { return size() == 0; }
  FactRef operator[](size_t i) const {
    return FactRef(store_->relation(), store_->Row(i), store_->arity());
  }

  class iterator {
   public:
    using value_type = FactRef;
    using difference_type = std::ptrdiff_t;
    using iterator_category = std::forward_iterator_tag;

    iterator() = default;
    iterator(const RelationStore* store, uint64_t index)
        : store_(store), index_(index) {}
    FactRef operator*() const {
      return FactRef(store_->relation(), store_->Row(index_),
                     store_->arity());
    }
    iterator& operator++() {
      ++index_;
      return *this;
    }
    iterator operator++(int) {
      iterator old = *this;
      ++index_;
      return old;
    }
    bool operator==(const iterator& o) const { return index_ == o.index_; }
    bool operator!=(const iterator& o) const { return index_ != o.index_; }

   private:
    const RelationStore* store_ = nullptr;
    uint64_t index_ = 0;
  };

  iterator begin() const { return iterator(store_, 0); }
  iterator end() const { return iterator(store_, size()); }

 private:
  const RelationStore* store_ = nullptr;
};

}  // namespace rbda

#endif  // RBDA_DATA_FACT_STORE_H_
