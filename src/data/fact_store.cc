#include "data/fact_store.h"

#include <algorithm>
#include <cstring>

namespace rbda {

namespace {
const std::vector<uint32_t> kNoPostings;

// splitmix64-style word mixer; the dedup table's quality hinges on this
// spreading near-identical rows (chase rows differ in one null id).
uint64_t Mix(uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}
}  // namespace

RelationStore::RelationStore(const RelationStore& other)
    : relation_(other.relation_),
      arity_(other.arity_),
      num_rows_(other.num_rows_),
      max_rows_(other.max_rows_),
      slots_(other.slots_),
      postings_(other.postings_) {
  blocks_.reserve(other.blocks_.size());
  const size_t words = static_cast<size_t>(arity_) * kRowsPerBlock;
  for (const auto& block : other.blocks_) {
    auto copy = std::make_unique<Term[]>(words);
    std::memcpy(copy.get(), block.get(), words * sizeof(Term));
    blocks_.push_back(std::move(copy));
  }
}

RelationStore& RelationStore::operator=(const RelationStore& other) {
  if (this != &other) {
    RelationStore copy(other);
    *this = std::move(copy);
  }
  return *this;
}

uint64_t RelationStore::HashRow(const Term* row) const {
  uint64_t h = 0x9e3779b97f4a7c15ULL ^ arity_;
  for (uint32_t i = 0; i < arity_; ++i) {
    h = Mix(h ^ row[i].raw());
  }
  return h;
}

bool RelationStore::RowEquals(uint64_t id, const Term* row) const {
  const Term* stored = Row(id);
  for (uint32_t i = 0; i < arity_; ++i) {
    if (stored[i] != row[i]) return false;
  }
  return true;
}

size_t RelationStore::ProbeSlot(const Term* row) const {
  const size_t mask = slots_.size() - 1;
  size_t slot = static_cast<size_t>(HashRow(row)) & mask;
  while (slots_[slot] != kEmptySlot && !RowEquals(slots_[slot], row)) {
    slot = (slot + 1) & mask;
  }
  return slot;
}

void RelationStore::GrowTable() {
  const size_t new_size = slots_.empty() ? kInitialSlots : slots_.size() * 2;
  slots_.assign(new_size, kEmptySlot);
  const size_t mask = new_size - 1;
  for (uint64_t id = 0; id < num_rows_; ++id) {
    size_t slot = static_cast<size_t>(HashRow(Row(id))) & mask;
    while (slots_[slot] != kEmptySlot) slot = (slot + 1) & mask;
    slots_[slot] = static_cast<uint32_t>(id);
  }
}

Status RelationStore::Insert(const Term* row, uint32_t* id, bool* inserted) {
  if (slots_.empty() ||
      num_rows_ * 100 >= slots_.size() * kMaxLoadPercent) {
    GrowTable();
  }
  size_t slot = ProbeSlot(row);
  if (slots_[slot] != kEmptySlot) {
    *id = slots_[slot];
    *inserted = false;
    return Status::Ok();
  }
  if (num_rows_ >= max_rows_) {
    return Status::ResourceExhausted(
        "relation store for relation id " + std::to_string(relation_) +
        " is full: " + std::to_string(num_rows_) +
        " rows exhaust the 32-bit row-id space (limit " +
        std::to_string(max_rows_) + ")");
  }
  // Append the row to the arena.
  const uint64_t new_id = num_rows_;
  if ((new_id >> kRowsPerBlockLog2) >= blocks_.size()) {
    blocks_.push_back(
        std::make_unique<Term[]>(static_cast<size_t>(arity_) *
                                 kRowsPerBlock));
  }
  Term* dest = blocks_[new_id >> kRowsPerBlockLog2].get() +
               (new_id & kRowsPerBlockMask) * arity_;
  std::copy(row, row + arity_, dest);
  ++num_rows_;
  slots_[slot] = static_cast<uint32_t>(new_id);
  // Column postings.
  if (postings_.empty() && arity_ > 0) postings_.resize(arity_);
  for (uint32_t p = 0; p < arity_; ++p) {
    postings_[p][row[p].raw()].push_back(static_cast<uint32_t>(new_id));
  }
  *id = static_cast<uint32_t>(new_id);
  *inserted = true;
  return Status::Ok();
}

bool RelationStore::Find(const Term* row, uint32_t* id) const {
  if (slots_.empty()) return false;
  size_t slot = ProbeSlot(row);
  if (slots_[slot] == kEmptySlot) return false;
  *id = slots_[slot];
  return true;
}

const std::vector<uint32_t>& RelationStore::Postings(uint32_t position,
                                                     Term term) const {
  if (position >= postings_.size()) return kNoPostings;
  auto it = postings_[position].find(term.raw());
  return it == postings_[position].end() ? kNoPostings : it->second;
}

size_t RelationStore::MemoryBytes() const {
  size_t bytes = blocks_.size() * static_cast<size_t>(arity_) *
                 kRowsPerBlock * sizeof(Term);
  bytes += slots_.size() * sizeof(uint32_t);
  for (const auto& column : postings_) {
    for (const auto& [term, ids] : column) {
      bytes += sizeof(term) + ids.capacity() * sizeof(uint32_t);
    }
  }
  return bytes;
}

}  // namespace rbda
