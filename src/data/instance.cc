#include "data/instance.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "base/str_util.h"

namespace rbda {

namespace {
const std::vector<uint32_t> kNoIndexes;
}  // namespace

RelationStore* Instance::StoreFor(RelationId relation, uint32_t arity) {
  auto it = stores_.find(relation);
  if (it == stores_.end()) {
    it = stores_
             .emplace(relation,
                      RelationStore(relation, arity, max_rows_per_relation_))
             .first;
    relation_order_.push_back(relation);
  }
  return &it->second;
}

const RelationStore* Instance::FindStore(RelationId relation) const {
  auto it = stores_.find(relation);
  return it == stores_.end() ? nullptr : &it->second;
}

Status Instance::TryAddRow(RelationId relation, std::span<const Term> row,
                           bool* inserted) {
  *inserted = false;
  RelationStore* store =
      StoreFor(relation, static_cast<uint32_t>(row.size()));
  if (store->arity() != row.size()) {
    return Status::InvalidArgument(
        "arity mismatch for relation id " + std::to_string(relation) +
        ": stored rows have arity " + std::to_string(store->arity()) +
        ", got " + std::to_string(row.size()));
  }
  uint32_t id = 0;
  RBDA_RETURN_IF_ERROR(store->Insert(row.data(), &id, inserted));
  if (*inserted) {
    ++total_rows_;
    ++generation_;
  }
  return Status::Ok();
}

bool Instance::AddRowChecked(RelationId relation, const Term* row,
                             uint32_t arity) {
  bool inserted = false;
  Status status = TryAddRow(relation, {row, arity}, &inserted);
  if (!status.ok()) {
    // Loud, defined failure — the silent-truncation alternative corrupts
    // the instance. Callers that want to survive this use TryAddRow.
    std::fprintf(stderr, "Instance::AddFact failed: %s\n",
                 status.ToString().c_str());
    std::abort();
  }
  return inserted;
}

bool Instance::ContainsRow(RelationId relation,
                           std::span<const Term> row) const {
  const RelationStore* store = FindStore(relation);
  if (store == nullptr || store->arity() != row.size()) return false;
  uint32_t id = 0;
  return store->Find(row.data(), &id);
}

Instance::DeltaMark Instance::Mark() const {
  DeltaMark mark;
  mark.rebuilds = rebuilds_;
  mark.generation = generation_;
  mark.sizes.reserve(stores_.size());
  for (const auto& [rel, store] : stores_) {
    mark.sizes.emplace(rel, store.size());
  }
  return mark;
}

uint32_t Instance::DeltaBegin(const DeltaMark& mark,
                              RelationId relation) const {
  auto it = mark.sizes.find(relation);
  return it == mark.sizes.end() ? 0 : static_cast<uint32_t>(it->second);
}

FactRange Instance::FactsOf(RelationId relation) const {
  return FactRange(FindStore(relation));
}

std::vector<RelationId> Instance::PopulatedRelations() const {
  std::vector<RelationId> out;
  for (const auto& [rel, store] : stores_) {
    if (store.size() > 0) out.push_back(rel);
  }
  std::sort(out.begin(), out.end());
  return out;
}

const std::vector<uint32_t>& Instance::FactsWith(RelationId relation,
                                                 uint32_t position,
                                                 Term term) const {
  const RelationStore* store = FindStore(relation);
  if (store == nullptr) return kNoIndexes;
  return store->Postings(position, term);
}

TermSet Instance::ActiveDomain() const {
  TermSet domain;
  ForEachFact([&](FactRef f) {
    for (Term t : f.args()) domain.insert(t);
  });
  return domain;
}

void Instance::UnionWith(const Instance& other) {
  other.ForEachFact([&](FactRef f) { AddFact(f); });
}

bool Instance::IsSubinstanceOf(const Instance& other) const {
  if (NumFacts() > other.NumFacts()) return false;
  return ForEachFactUntil([&](FactRef f) {
    return other.ContainsRow(f.relation(), f.args());
  });
}

void Instance::ReplaceTerm(Term from, Term to) {
  if (from == to) return;
  std::unordered_map<Term, Term, TermHash> mapping;
  mapping.emplace(from, to);
  ReplaceTerms(mapping);
}

void Instance::ReplaceTerms(
    const std::unordered_map<Term, Term, TermHash>& mapping) {
  if (mapping.empty()) return;
  Instance rewritten;
  rewritten.max_rows_per_relation_ = max_rows_per_relation_;
  // Remap arena-to-arena through a scratch row: per-relation row counts
  // can only shrink (duplicates merge), so the checked row-id guard that
  // admitted this instance admits the rewrite.
  std::vector<Term> scratch;
  for (RelationId rel : relation_order_) {
    const RelationStore& store = stores_.at(rel);
    const uint32_t arity = store.arity();
    scratch.resize(arity);
    for (uint64_t i = 0; i < store.size(); ++i) {
      const Term* row = store.Row(i);
      for (uint32_t p = 0; p < arity; ++p) {
        auto it = mapping.find(row[p]);
        scratch[p] = it == mapping.end() ? row[p] : it->second;
      }
      rewritten.AddRow(rel, scratch);
    }
  }
  // Keep the growth counters monotone across the rebuild: the structural
  // change invalidates outstanding DeltaMarks via rebuilds_, and
  // generation_ must never repeat a value for a different state.
  rewritten.generation_ = generation_ + 1;
  rewritten.rebuilds_ = rebuilds_ + 1;
  *this = std::move(rewritten);
}

Instance Instance::RestrictTo(
    const std::unordered_set<RelationId>& relations) const {
  Instance out;
  out.max_rows_per_relation_ = max_rows_per_relation_;
  for (RelationId rel : relation_order_) {
    if (relations.count(rel) == 0) continue;
    const RelationStore& store = stores_.at(rel);
    if (store.size() == 0) continue;
    out.stores_.emplace(rel, store);  // arena copied whole, order kept
    out.relation_order_.push_back(rel);
    out.total_rows_ += store.size();
  }
  out.generation_ = out.total_rows_;
  return out;
}

size_t Instance::MemoryBytes() const {
  size_t bytes = 0;
  for (const auto& [rel, store] : stores_) bytes += store.MemoryBytes();
  return bytes;
}

void Instance::SetMaxRowsPerRelationForTesting(uint64_t max_rows) {
  max_rows_per_relation_ = std::min(max_rows, RelationStore::kMaxRows);
  for (auto& [rel, store] : stores_) {
    store.set_max_rows(max_rows_per_relation_);
  }
}

std::string Instance::ToString(const Universe& universe) const {
  std::vector<Fact> sorted;
  sorted.reserve(NumFacts());
  ForEachFact([&](FactRef f) { sorted.push_back(Fact(f)); });
  std::sort(sorted.begin(), sorted.end());
  std::string out;
  for (const Fact& f : sorted) {
    out += FactToString(f, universe);
    out += "\n";
  }
  return out;
}

std::string FactToString(const Fact& fact, const Universe& universe) {
  std::vector<std::string> args;
  args.reserve(fact.args.size());
  for (const Term& t : fact.args) args.push_back(universe.TermName(t));
  return universe.RelationName(fact.relation) + "(" + Join(args, ", ") + ")";
}

}  // namespace rbda
