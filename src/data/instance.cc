#include "data/instance.h"

#include <algorithm>

#include "base/str_util.h"

namespace rbda {

namespace {
const std::vector<Fact> kNoFacts;
const std::vector<uint32_t> kNoIndexes;
}  // namespace

bool Instance::AddFact(const Fact& fact) {
  auto [it, inserted] = all_.insert(fact);
  if (!inserted) return false;
  auto& facts = by_relation_[fact.relation];
  uint32_t idx = static_cast<uint32_t>(facts.size());
  facts.push_back(fact);
  for (uint32_t p = 0; p < fact.args.size(); ++p) {
    index_[IndexKey{fact.relation, p, fact.args[p]}].push_back(idx);
  }
  ++generation_;
  return true;
}

Instance::DeltaMark Instance::Mark() const {
  DeltaMark mark;
  mark.rebuilds = rebuilds_;
  mark.generation = generation_;
  mark.sizes.reserve(by_relation_.size());
  for (const auto& [rel, facts] : by_relation_) {
    mark.sizes.emplace(rel, static_cast<uint32_t>(facts.size()));
  }
  return mark;
}

uint32_t Instance::DeltaBegin(const DeltaMark& mark,
                              RelationId relation) const {
  auto it = mark.sizes.find(relation);
  return it == mark.sizes.end() ? 0 : it->second;
}

const std::vector<Fact>& Instance::FactsOf(RelationId relation) const {
  auto it = by_relation_.find(relation);
  return it == by_relation_.end() ? kNoFacts : it->second;
}

std::vector<RelationId> Instance::PopulatedRelations() const {
  std::vector<RelationId> out;
  for (const auto& [rel, facts] : by_relation_) {
    if (!facts.empty()) out.push_back(rel);
  }
  std::sort(out.begin(), out.end());
  return out;
}

const std::vector<uint32_t>& Instance::FactsWith(RelationId relation,
                                                 uint32_t position,
                                                 Term term) const {
  auto it = index_.find(IndexKey{relation, position, term});
  return it == index_.end() ? kNoIndexes : it->second;
}

TermSet Instance::ActiveDomain() const {
  TermSet domain;
  ForEachFact([&](const Fact& f) {
    for (const Term& t : f.args) domain.insert(t);
  });
  return domain;
}

void Instance::UnionWith(const Instance& other) {
  other.ForEachFact([&](const Fact& f) { AddFact(f); });
}

bool Instance::IsSubinstanceOf(const Instance& other) const {
  if (NumFacts() > other.NumFacts()) return false;
  bool ok = true;
  ForEachFact([&](const Fact& f) {
    if (!other.Contains(f)) ok = false;
  });
  return ok;
}

void Instance::ReplaceTerm(Term from, Term to) {
  if (from == to) return;
  std::unordered_map<Term, Term, TermHash> mapping;
  mapping.emplace(from, to);
  ReplaceTerms(mapping);
}

void Instance::ReplaceTerms(
    const std::unordered_map<Term, Term, TermHash>& mapping) {
  if (mapping.empty()) return;
  Instance rewritten;
  ForEachFact([&](const Fact& f) {
    Fact g = f;
    for (Term& t : g.args) {
      auto it = mapping.find(t);
      if (it != mapping.end()) t = it->second;
    }
    rewritten.AddFact(std::move(g));
  });
  // Keep the growth counters monotone across the rebuild: the structural
  // change invalidates outstanding DeltaMarks via rebuilds_, and
  // generation_ must never repeat a value for a different state.
  rewritten.generation_ = generation_ + 1;
  rewritten.rebuilds_ = rebuilds_ + 1;
  *this = std::move(rewritten);
}

Instance Instance::RestrictTo(
    const std::unordered_set<RelationId>& relations) const {
  Instance out;
  ForEachFact([&](const Fact& f) {
    if (relations.count(f.relation)) out.AddFact(f);
  });
  return out;
}

std::string Instance::ToString(const Universe& universe) const {
  std::vector<Fact> sorted;
  sorted.reserve(all_.size());
  ForEachFact([&](const Fact& f) { sorted.push_back(f); });
  std::sort(sorted.begin(), sorted.end());
  std::string out;
  for (const Fact& f : sorted) {
    out += FactToString(f, universe);
    out += "\n";
  }
  return out;
}

std::string FactToString(const Fact& fact, const Universe& universe) {
  std::vector<std::string> args;
  args.reserve(fact.args.size());
  for (const Term& t : fact.args) args.push_back(universe.TermName(t));
  return universe.RelationName(fact.relation) + "(" + Join(args, ", ") + ")";
}

}  // namespace rbda
