// Terms: the values that populate facts, queries, and constraints.
//
// A term is a constant (a named data value), a variable (appears in queries
// and dependencies), or a labeled null (a fresh witness invented by the
// chase). Terms are small value types: a tag plus a 32-bit id. Names for
// constants and variables are interned in a Universe.
#ifndef RBDA_DATA_TERM_H_
#define RBDA_DATA_TERM_H_

#include <cstdint>
#include <functional>

namespace rbda {

enum class TermKind : uint8_t {
  kConstant = 0,
  kVariable = 1,
  kNull = 2,
};

class Term {
 public:
  Term() : bits_(0) {}

  static Term Constant(uint32_t id) { return Term(TermKind::kConstant, id); }
  static Term Variable(uint32_t id) { return Term(TermKind::kVariable, id); }
  static Term Null(uint32_t id) { return Term(TermKind::kNull, id); }

  TermKind kind() const { return static_cast<TermKind>(bits_ >> 32); }
  uint32_t id() const { return static_cast<uint32_t>(bits_); }

  bool IsConstant() const { return kind() == TermKind::kConstant; }
  bool IsVariable() const { return kind() == TermKind::kVariable; }
  bool IsNull() const { return kind() == TermKind::kNull; }

  bool operator==(const Term& o) const { return bits_ == o.bits_; }
  bool operator!=(const Term& o) const { return bits_ != o.bits_; }
  bool operator<(const Term& o) const { return bits_ < o.bits_; }

  uint64_t raw() const { return bits_; }

 private:
  Term(TermKind kind, uint32_t id)
      : bits_((static_cast<uint64_t>(kind) << 32) | id) {}
  uint64_t bits_;
};

struct TermHash {
  size_t operator()(const Term& t) const {
    uint64_t z = t.raw() + 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return static_cast<size_t>(z ^ (z >> 31));
  }
};

}  // namespace rbda

#endif  // RBDA_DATA_TERM_H_
