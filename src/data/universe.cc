#include "data/universe.h"

namespace rbda {

StatusOr<RelationId> Universe::AddRelation(std::string_view name,
                                           uint32_t arity) {
  SymbolId existing;
  if (relations_.Lookup(name, &existing)) {
    if (arities_[existing] != arity) {
      return Status::InvalidArgument("relation '" + std::string(name) +
                                     "' redeclared with different arity");
    }
    return existing;
  }
  SymbolId id = relations_.Intern(name);
  RBDA_DCHECK(id == arities_.size());
  arities_.push_back(arity);
  return id;
}

bool Universe::LookupRelation(std::string_view name, RelationId* id) const {
  return relations_.Lookup(name, id);
}

Term Universe::FreshVariable() {
  for (;;) {
    std::string name = "_v" + std::to_string(fresh_var_counter_++);
    SymbolId ignored;
    if (!variables_.Lookup(name, &ignored)) {
      return Term::Variable(variables_.Intern(name));
    }
  }
}

std::string Universe::TermName(Term t) const {
  switch (t.kind()) {
    case TermKind::kConstant:
      return constants_.NameOf(t.id());
    case TermKind::kVariable:
      return variables_.NameOf(t.id());
    case TermKind::kNull:
      return "_n" + std::to_string(t.id());
  }
  return "?";
}

}  // namespace rbda
