#include "chase/certain_answers.h"

#include <algorithm>
#include <set>

namespace rbda {

StatusOr<CertainAnswersResult> CertainAnswers(const ConjunctiveQuery& q,
                                              const Instance& data,
                                              const ConstraintSet& sigma,
                                              Universe* universe,
                                              const ChaseOptions& options) {
  CertainAnswersResult result;
  TermSet original_domain = data.ActiveDomain();

  ChaseResult chased = RunChase(data, sigma, universe, options);
  if (chased.status == ChaseStatus::kFdConflict) {
    result.inconsistent = true;
    result.answers = q.Evaluate(data);
    return result;
  }
  result.complete = chased.status == ChaseStatus::kCompleted;

  // Answers over the chased (universal) instance whose values are all from
  // the original active domain are certain: they map to themselves under
  // every homomorphism into every model.
  std::set<std::vector<Term>> answers;
  for (const std::vector<Term>& tuple : q.Evaluate(chased.instance)) {
    bool grounded = true;
    for (Term t : tuple) {
      if (!t.IsConstant() && !original_domain.count(t)) {
        grounded = false;
        break;
      }
    }
    if (grounded) answers.insert(tuple);
  }
  result.answers.assign(answers.begin(), answers.end());
  return result;
}

}  // namespace rbda
