// Goal-directed relevance analysis for the containment engines
// (DESIGN.md "Relevance-pruned chase").
//
// Exact relevance — "can constraint τ ever matter for deriving the goal?"
// — is undecidable even for access-limited Datalog ("Determining Relevant
// Relations for Datalog Queries under Access Limitations is Undecidable"),
// so this computes a sound OVER-approximation: the set of relations
// backward-reachable from the goal atoms through Σ's head→body dependency
// graph, in the style of magic-set / backward rule evaluation.
//
// Seeds: the goal's relations, plus the relation of every FD. FD relations
// must always stay live because EGD merges act on terms globally: a merge
// triggered by facts in a relation unreachable from the goal can identify
// a null with a constant that a goal match needs, and a merge of two
// distinct constants makes the containment vacuously true (kFdConflict).
// Seeding every FD relation keeps every derivation that can feed an EGD.
//
// Fixpoint: a TGD is relevant iff some head relation is relevant, and its
// body relations then become relevant; a cardinality rule is relevant iff
// its target relation is relevant, and its source relation (plus the
// accessible relation, when the rule requires accessibility) become
// relevant.
//
// Soundness of pruned verdicts (with Σ' = the relevant subset of Σ):
//  * kContained under Σ' implies kContained under Σ — every model of
//    (start, Σ) is a model of (start, Σ'), so a proof that the goal holds
//    in all models of the weaker theory carries over.
//  * A pruned chase that completes is a model of Σ' in which the goal
//    fails. Extending it with the dropped constraints adds facts only in
//    irrelevant relations (every head relation of a dropped TGD is
//    irrelevant, likewise every dropped rule's target), which can neither
//    trigger a relevant constraint nor an EGD nor extend a goal match —
//    so a counter-model of the full Σ exists and kNotContained is sound.
//  * An FD conflict forced by Σ is forced by Σ' (conflict derivations pass
//    only through relevant relations), so a pruned chase never completes
//    past a conflict the full chase would have hit.
// A pruned chase may return a definite verdict where the full chase runs
// out of budget (kUnknown): pruning increases completeness, never
// soundness risk. The goal-pruned-vs-full fuzz checker enforces this
// contract against the unpruned engines.
#ifndef RBDA_CHASE_RELEVANCE_H_
#define RBDA_CHASE_RELEVANCE_H_

#include <cstddef>
#include <vector>

#include "chase/chase.h"

namespace rbda {

struct RelevanceResult {
  /// Indexed by RelationId: true = the chase may still need to derive
  /// into this relation on some path to the goal or to an EGD.
  std::vector<bool> relevant_relations;
  size_t relevant_tgds = 0;
  size_t pruned_tgds = 0;
  size_t relevant_rules = 0;
  size_t pruned_rules = 0;

  size_t PrunedConstraints() const { return pruned_tgds + pruned_rules; }
};

inline bool RelationIsRelevant(RelationId relation,
                               const std::vector<bool>& relevant) {
  return static_cast<size_t>(relation) < relevant.size() &&
         relevant[relation];
}

/// A TGD fires for a reason iff it can derive into a relevant relation.
bool TgdIsRelevant(const Tgd& tgd, const std::vector<bool>& relevant);

/// A cardinality rule matters iff its target relation is relevant.
bool CardinalityRuleIsRelevant(const CardinalityRule& rule,
                               const std::vector<bool>& relevant);

/// Backward relevance closure for a disjunction of goals (UCQ right-hand
/// sides share one closure). `num_relations` pre-sizes the bitset
/// (Universe::NumRelations()); relation ids beyond it still grow it.
/// `inject_overprune_for_testing` deliberately drops one non-seed relevant
/// relation from the final set — the rbda_fuzz --inject-bug=overprune hook
/// proving the goal-pruned-vs-full checker catches unsound pruning.
RelevanceResult ComputeRelevance(const std::vector<std::vector<Atom>>& goals,
                                 const std::vector<Tgd>& tgds,
                                 const std::vector<Fd>& fds,
                                 const std::vector<CardinalityRule>& rules,
                                 size_t num_relations,
                                 bool inject_overprune_for_testing = false);

/// Single-goal convenience over a ConstraintSet.
RelevanceResult ComputeRelevance(const std::vector<Atom>& goal,
                                 const ConstraintSet& sigma,
                                 const std::vector<CardinalityRule>& rules,
                                 size_t num_relations,
                                 bool inject_overprune_for_testing = false);

/// Forward signature closure: the relations that can ever hold a fact in
/// any chase of `start` under the relevance-enabled subset of the
/// constraints (a TGD whose body relations are all populated populates
/// its head relations; a rule whose source — and accessible relation,
/// when required — is populated populates its target). Term identities
/// are abstracted away entirely, so membership is a necessary condition
/// only.
std::vector<bool> SignatureClosure(const Instance& start,
                                   const std::vector<Tgd>& tgds,
                                   const std::vector<CardinalityRule>& rules,
                                   const std::vector<bool>& relevant);

/// True iff every goal atom's relation is in `closure`.
bool GoalWithinSignature(const std::vector<Atom>& goal,
                         const std::vector<bool>& closure);

/// Necessary-condition prefilter: false means NO chase of `start` under
/// the relevance-enabled constraints can ever satisfy the goal, so the
/// containment engines may answer kNotContained without chasing.
/// CAUTION: only sound when no FD can conflict (sigma.fds empty) — an FD
/// conflict makes containment vacuously kContained, which this abstraction
/// cannot see. The linear engine has no FDs, so it always applies there.
bool SignatureCanReachGoal(const Instance& start,
                           const std::vector<Atom>& goal,
                           const std::vector<Tgd>& tgds,
                           const std::vector<CardinalityRule>& rules,
                           const std::vector<bool>& relevant);

/// Witness-reuse countermodel: saturates a small FINITE model of
/// (tgds ∪ rules) extending `start`, giving every TGD ONE fixed witness
/// null per existential variable and every cardinality rule a fixed pool
/// of witness nulls per copy index — so the infinite chase tree folds
/// into a structure whose term count is bounded by the constraint set,
/// not by the chase depth. Returns true iff saturation reached a fixpoint
/// within `max_facts`/`max_rounds` AND none of the `goals` has a
/// homomorphism into the model. A true return is a machine-checked
/// counter-model: a model of the full constraint set containing the
/// canonical database in which every goal fails, certifying
/// kNotContained regardless of how far the real chase would run. A false
/// return says nothing (the model may admit spurious matches that the
/// tree-shaped chase would not).
///
/// CAUTION: only sound when no FDs/EGDs participate — EGD merges are not
/// modelled, so callers must gate on sigma.fds.empty() (the linear
/// engine has no FDs by construction).
bool CounterModelRefutesGoals(const Instance& start,
                              const std::vector<std::vector<Atom>>& goals,
                              const std::vector<Tgd>& tgds,
                              const std::vector<CardinalityRule>& rules,
                              Universe* universe,
                              size_t max_facts = 4096,
                              size_t max_rounds = 64);

/// Resolves the effective pruning mode the way ResolveJobs resolves the
/// worker count: an explicit request (0 = off, 1 = on) wins; -1 = unset
/// consults the RBDA_PRUNE environment variable ("0"/"off"/"false"
/// disable); the default is on.
bool ResolvePrune(int requested);

}  // namespace rbda

#endif  // RBDA_CHASE_RELEVANCE_H_
