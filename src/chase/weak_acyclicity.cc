#include "chase/weak_acyclicity.h"

#include <map>
#include <set>

namespace rbda {

namespace {

using Node = uint64_t;
Node MakeNode(RelationId rel, uint32_t pos) {
  return (static_cast<uint64_t>(rel) << 32) | pos;
}

// Cycle detection over a digraph with edges partitioned into regular and
// special; reports whether some cycle uses at least one special edge.
struct Graph {
  std::map<Node, std::set<Node>> regular;
  std::map<Node, std::set<Node>> special;

  bool HasCycleThroughSpecial() const {
    // A special edge u -> v lies on a cycle iff v reaches u via any edges.
    std::map<Node, std::set<Node>> all = regular;
    for (const auto& [u, vs] : special) {
      for (Node v : vs) all[u].insert(v);
    }
    auto reaches = [&](Node from, Node to) {
      std::set<Node> seen{from};
      std::vector<Node> stack{from};
      while (!stack.empty()) {
        Node n = stack.back();
        stack.pop_back();
        if (n == to) return true;
        auto it = all.find(n);
        if (it == all.end()) continue;
        for (Node next : it->second) {
          if (seen.insert(next).second) stack.push_back(next);
        }
      }
      return false;
    };
    for (const auto& [u, vs] : special) {
      for (Node v : vs) {
        if (v == u || reaches(v, u)) return true;
      }
    }
    return false;
  }

  bool HasAnyCycle() const {
    std::map<Node, std::set<Node>> all = regular;
    for (const auto& [u, vs] : special) {
      for (Node v : vs) all[u].insert(v);
    }
    // Kahn's algorithm.
    std::map<Node, int> indegree;
    for (const auto& [u, vs] : all) {
      indegree.emplace(u, 0);
      for (Node v : vs) indegree.emplace(v, 0);
    }
    for (const auto& [u, vs] : all) {
      for (Node v : vs) ++indegree[v];
    }
    std::vector<Node> queue;
    for (const auto& [n, d] : indegree) {
      if (d == 0) queue.push_back(n);
    }
    size_t removed = 0;
    while (!queue.empty()) {
      Node n = queue.back();
      queue.pop_back();
      ++removed;
      auto it = all.find(n);
      if (it == all.end()) continue;
      for (Node v : it->second) {
        if (--indegree[v] == 0) queue.push_back(v);
      }
    }
    return removed != indegree.size();
  }
};

Graph BuildDependencyGraph(const std::vector<Tgd>& tgds) {
  Graph g;
  for (const Tgd& tgd : tgds) {
    TermSet body_vars = tgd.BodyVariables();
    for (const Term& x : body_vars) {
      // Positions of x in the body.
      std::vector<Node> body_positions;
      for (const Atom& a : tgd.body()) {
        for (uint32_t p = 0; p < a.args.size(); ++p) {
          if (a.args[p] == x) body_positions.push_back(MakeNode(a.relation, p));
        }
      }
      for (const Atom& h : tgd.head()) {
        for (uint32_t p = 0; p < h.args.size(); ++p) {
          Node head_node = MakeNode(h.relation, p);
          if (h.args[p] == x) {
            for (Node b : body_positions) g.regular[b].insert(head_node);
          } else if (h.args[p].IsVariable() &&
                     !body_vars.count(h.args[p])) {
            // Existential variable position: special edge from every body
            // position of x.
            for (Node b : body_positions) g.special[b].insert(head_node);
          }
        }
      }
    }
  }
  return g;
}

}  // namespace

bool IsWeaklyAcyclic(const std::vector<Tgd>& tgds) {
  return !BuildDependencyGraph(tgds).HasCycleThroughSpecial();
}

bool HasAcyclicPositionGraph(const std::vector<Tgd>& tgds) {
  // Only exported-variable edges (the "basic position graph" of §5).
  Graph g;
  for (const Tgd& tgd : tgds) {
    TermSet head_vars = tgd.HeadVariables();
    for (const Atom& a : tgd.body()) {
      for (uint32_t p = 0; p < a.args.size(); ++p) {
        Term x = a.args[p];
        if (!x.IsVariable() || !head_vars.count(x)) continue;
        for (const Atom& h : tgd.head()) {
          for (uint32_t hp = 0; hp < h.args.size(); ++hp) {
            if (h.args[hp] == x) {
              g.regular[MakeNode(a.relation, p)].insert(
                  MakeNode(h.relation, hp));
            }
          }
        }
      }
    }
  }
  return !g.HasAnyCycle();
}

}  // namespace rbda
