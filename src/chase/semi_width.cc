#include "chase/semi_width.h"

#include <algorithm>
#include <numeric>

#include "chase/weak_acyclicity.h"

namespace rbda {

SemiWidthDecomposition ComputeSemiWidth(const std::vector<Tgd>& tgds) {
  SemiWidthDecomposition out;

  // Try to move rules into the acyclic part, widest first, keeping the
  // position graph of the chosen subset acyclic.
  std::vector<size_t> order(tgds.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return tgds[a].Width() > tgds[b].Width();
  });

  std::vector<Tgd> acyclic_rules;
  std::vector<bool> in_acyclic(tgds.size(), false);
  for (size_t idx : order) {
    acyclic_rules.push_back(tgds[idx]);
    if (HasAcyclicPositionGraph(acyclic_rules)) {
      in_acyclic[idx] = true;
    } else {
      acyclic_rules.pop_back();
    }
  }

  for (size_t i = 0; i < tgds.size(); ++i) {
    if (in_acyclic[i]) {
      out.acyclic.push_back(i);
    } else {
      out.bounded.push_back(i);
      out.semi_width = std::max(out.semi_width, tgds[i].Width());
    }
  }
  return out;
}

}  // namespace rbda
