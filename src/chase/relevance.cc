#include "chase/relevance.h"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <set>
#include <string>

namespace rbda {

namespace {

// Marks `relation` relevant/present, growing the bitset when a relation id
// exceeds the pre-sized universe count. Returns true when the bit was
// newly set (fixpoint progress).
bool Mark(RelationId relation, std::vector<bool>* bits) {
  size_t r = static_cast<size_t>(relation);
  if (r >= bits->size()) bits->resize(r + 1, false);
  if ((*bits)[r]) return false;
  (*bits)[r] = true;
  return true;
}

}  // namespace

bool TgdIsRelevant(const Tgd& tgd, const std::vector<bool>& relevant) {
  for (const Atom& h : tgd.head()) {
    if (RelationIsRelevant(h.relation, relevant)) return true;
  }
  return false;
}

bool CardinalityRuleIsRelevant(const CardinalityRule& rule,
                               const std::vector<bool>& relevant) {
  return RelationIsRelevant(rule.target_rel, relevant);
}

RelevanceResult ComputeRelevance(const std::vector<std::vector<Atom>>& goals,
                                 const std::vector<Tgd>& tgds,
                                 const std::vector<Fd>& fds,
                                 const std::vector<CardinalityRule>& rules,
                                 size_t num_relations,
                                 bool inject_overprune_for_testing) {
  RelevanceResult out;
  std::vector<bool>& relevant = out.relevant_relations;
  relevant.assign(num_relations, false);

  for (const std::vector<Atom>& goal : goals) {
    for (const Atom& a : goal) Mark(a.relation, &relevant);
  }
  for (const Fd& fd : fds) Mark(fd.relation, &relevant);
  // Seeds are exempt from the overprune injection: dropping a goal or FD
  // relation would break trivially (the goal could never match at all),
  // which is not the subtle bug class the checker exists to catch.
  std::vector<bool> seeds = relevant;

  bool changed = true;
  while (changed) {
    changed = false;
    for (const Tgd& tgd : tgds) {
      if (!TgdIsRelevant(tgd, relevant)) continue;
      for (const Atom& b : tgd.body()) changed |= Mark(b.relation, &relevant);
    }
    for (const CardinalityRule& rule : rules) {
      if (!CardinalityRuleIsRelevant(rule, relevant)) continue;
      changed |= Mark(rule.source_rel, &relevant);
      if (rule.require_accessible) {
        changed |= Mark(rule.accessible_rel, &relevant);
      }
    }
  }

  if (inject_overprune_for_testing) {
    for (size_t r = relevant.size(); r-- > 0;) {
      if (relevant[r] && (r >= seeds.size() || !seeds[r])) {
        relevant[r] = false;
        break;
      }
    }
  }

  for (const Tgd& tgd : tgds) {
    TgdIsRelevant(tgd, relevant) ? ++out.relevant_tgds : ++out.pruned_tgds;
  }
  for (const CardinalityRule& rule : rules) {
    CardinalityRuleIsRelevant(rule, relevant) ? ++out.relevant_rules
                                              : ++out.pruned_rules;
  }
  return out;
}

RelevanceResult ComputeRelevance(const std::vector<Atom>& goal,
                                 const ConstraintSet& sigma,
                                 const std::vector<CardinalityRule>& rules,
                                 size_t num_relations,
                                 bool inject_overprune_for_testing) {
  return ComputeRelevance({goal}, sigma.tgds, sigma.fds, rules, num_relations,
                          inject_overprune_for_testing);
}

std::vector<bool> SignatureClosure(const Instance& start,
                                   const std::vector<Tgd>& tgds,
                                   const std::vector<CardinalityRule>& rules,
                                   const std::vector<bool>& relevant) {
  std::vector<bool> present(relevant.size(), false);
  start.ForEachFact([&present](FactRef f) { Mark(f.relation(), &present); });

  auto has = [&present](RelationId r) {
    return static_cast<size_t>(r) < present.size() && present[r];
  };
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Tgd& tgd : tgds) {
      if (!TgdIsRelevant(tgd, relevant)) continue;  // pruned: never fires
      bool body_present = true;
      for (const Atom& b : tgd.body()) {
        if (!has(b.relation)) {
          body_present = false;
          break;
        }
      }
      if (!body_present) continue;
      for (const Atom& h : tgd.head()) changed |= Mark(h.relation, &present);
    }
    for (const CardinalityRule& rule : rules) {
      if (!CardinalityRuleIsRelevant(rule, relevant)) continue;
      if (!has(rule.source_rel)) continue;
      // A rule with no input positions has a vacuous accessibility
      // precondition: it fires from the source relation alone, so the
      // accessible relation is only a necessary ingredient when some
      // input term must be proven accessible.
      if (rule.require_accessible && !rule.input_positions.empty() &&
          !has(rule.accessible_rel)) {
        continue;
      }
      changed |= Mark(rule.target_rel, &present);
    }
  }
  return present;
}

bool GoalWithinSignature(const std::vector<Atom>& goal,
                         const std::vector<bool>& closure) {
  for (const Atom& a : goal) {
    if (static_cast<size_t>(a.relation) >= closure.size() ||
        !closure[a.relation]) {
      return false;
    }
  }
  return true;
}

bool SignatureCanReachGoal(const Instance& start,
                           const std::vector<Atom>& goal,
                           const std::vector<Tgd>& tgds,
                           const std::vector<CardinalityRule>& rules,
                           const std::vector<bool>& relevant) {
  return GoalWithinSignature(goal,
                             SignatureClosure(start, tgds, rules, relevant));
}

bool CounterModelRefutesGoals(const Instance& start,
                              const std::vector<std::vector<Atom>>& goals,
                              const std::vector<Tgd>& tgds,
                              const std::vector<CardinalityRule>& rules,
                              Universe* universe,
                              size_t max_facts,
                              size_t max_rounds) {
  if (universe == nullptr) return false;

  Instance m;
  bool overflow = false;
  start.ForEachFactUntil([&](FactRef f) {
    bool inserted = false;
    if (!m.TryAddRow(f.relation(), f.args(), &inserted).ok()) {
      overflow = true;
      return false;
    }
    return true;
  });
  if (overflow || m.NumFacts() > max_facts) return false;

  // One fixed witness null per (TGD, existential variable): every firing
  // of the same TGD lands on the same witnesses, which merges the chase
  // tree's sibling subtrees. The merged structure still satisfies each
  // ∀∃ sentence — an existential only needs SOME witness — and the
  // quotient map from the real chase into it shows every chase fact has
  // an image here, so a goal that fails here fails in the chase too.
  std::vector<Substitution> witnesses(tgds.size());
  for (size_t i = 0; i < tgds.size(); ++i) {
    for (Term y : tgds[i].ExistentialVariables()) {
      witnesses[i].emplace(y, universe->FreshNull());
    }
  }
  // Cardinality rules need up to `bound` DISTINCT target facts per
  // binding, so each rule gets a lazily-grown pool of witness rows, one
  // per copy index (copies differ in their non-input positions).
  std::vector<std::vector<std::vector<Term>>> rule_nulls(rules.size());

  bool saturated = false;
  for (size_t round = 0; round < max_rounds && !saturated; ++round) {
    std::vector<Fact> pending;
    for (size_t i = 0; i < tgds.size(); ++i) {
      const Tgd& tgd = tgds[i];
      ForEachHomomorphism(
          tgd.body(), m, nullptr, [&](const Substitution& sub) {
            Substitution ext = witnesses[i];
            for (Term x : tgd.ExportedVariables()) {
              ext.emplace(x, ApplyToTerm(sub, x));
            }
            for (const Atom& h : tgd.head()) {
              Fact f = ApplyToAtom(ext, h);
              if (!m.Contains(f)) pending.push_back(std::move(f));
            }
            return true;
          });
    }
    for (size_t ri = 0; ri < rules.size(); ++ri) {
      const CardinalityRule& rule = rules[ri];
      // Mirror FireCardinalityRound: group source facts by their
      // input-position tuple, demand min(bound, #matches) distinct
      // targets per accessible binding.
      std::map<std::vector<Term>, std::set<std::vector<Term>>> groups;
      for (FactRef f : m.FactsOf(rule.source_rel)) {
        std::vector<Term> key;
        key.reserve(rule.input_positions.size());
        for (uint32_t p : rule.input_positions) key.push_back(f.arg(p));
        groups[std::move(key)].insert(
            std::vector<Term>(f.args().begin(), f.args().end()));
      }
      uint32_t arity = universe->Arity(rule.target_rel);
      for (const auto& [binding, matches] : groups) {
        if (rule.require_accessible) {
          bool accessible = true;
          for (Term t : binding) {
            if (!m.ContainsRow(rule.accessible_rel, {&t, 1})) {
              accessible = false;
              break;
            }
          }
          if (!accessible) continue;
        }
        uint64_t j = std::min<uint64_t>(rule.bound, matches.size());
        uint64_t have = 0;
        for (FactRef f : m.FactsOf(rule.target_rel)) {
          bool match = true;
          for (size_t idx = 0; idx < rule.input_positions.size(); ++idx) {
            if (f.arg(rule.input_positions[idx]) != binding[idx]) {
              match = false;
              break;
            }
          }
          if (match) ++have;
        }
        // Top up with canonical copies. A canonical copy already in the
        // model was counted in `have`, so this cannot loop forever.
        for (uint64_t c = 0; c < j && have < j; ++c) {
          while (rule_nulls[ri].size() <= c) {
            std::vector<Term> row;
            row.reserve(arity);
            for (uint32_t p = 0; p < arity; ++p) {
              row.push_back(universe->FreshNull());
            }
            rule_nulls[ri].push_back(std::move(row));
          }
          Fact f;
          f.relation = rule.target_rel;
          f.args.assign(arity, Term());
          std::vector<bool> is_input(arity, false);
          for (size_t idx = 0; idx < rule.input_positions.size(); ++idx) {
            f.args[rule.input_positions[idx]] = binding[idx];
            is_input[rule.input_positions[idx]] = true;
          }
          for (uint32_t p = 0; p < arity; ++p) {
            if (!is_input[p]) f.args[p] = rule_nulls[ri][c][p];
          }
          if (m.Contains(f)) continue;  // counted in `have` already
          pending.push_back(std::move(f));
          ++have;
        }
      }
    }
    if (pending.empty()) {
      saturated = true;
      break;
    }
    for (Fact& f : pending) {
      bool inserted = false;
      if (!m.TryAddFact(f, &inserted).ok()) return false;
      if (m.NumFacts() > max_facts) return false;
    }
  }
  if (!saturated) return false;  // no fixpoint within budget: inconclusive

  for (const std::vector<Atom>& goal : goals) {
    if (FindHomomorphism(goal, m).has_value()) return false;
  }
  return true;
}

bool ResolvePrune(int requested) {
  if (requested >= 0) return requested != 0;
  const char* env = std::getenv("RBDA_PRUNE");
  if (env != nullptr && *env != '\0') {
    std::string v(env);
    if (v == "0" || v == "off" || v == "OFF" || v == "false") return false;
  }
  return true;
}

}  // namespace rbda
