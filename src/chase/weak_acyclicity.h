// Weak acyclicity of a set of TGDs (Fagin et al. [28]): a sufficient
// syntactic condition for chase termination, used to predict when the
// generic containment engine is complete.
#ifndef RBDA_CHASE_WEAK_ACYCLICITY_H_
#define RBDA_CHASE_WEAK_ACYCLICITY_H_

#include <vector>

#include "constraints/tgd.h"

namespace rbda {

/// True if the dependency graph of `tgds` has no cycle through a special
/// (existential) edge, which guarantees that every chase sequence
/// terminates.
bool IsWeaklyAcyclic(const std::vector<Tgd>& tgds);

/// True if the *position graph* of the TGDs (edges follow exported
/// variables from body to head positions) is acyclic. This is the notion
/// behind the "acyclic part" of a semi-width decomposition (paper §5).
bool HasAcyclicPositionGraph(const std::vector<Tgd>& tgds);

}  // namespace rbda

#endif  // RBDA_CHASE_WEAK_ACYCLICITY_H_
