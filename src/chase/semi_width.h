// Semi-width of a set of linear TGDs (paper §5): a decomposition into a
// width-bounded part Σ1 and a part Σ2 whose position graph is acyclic.
// Semi-width controls the Johnson–Klug depth bound (Prop 5.6 / E.8).
//
// Finding the optimal decomposition is combinatorial; the greedy heuristic
// here moves rules into the acyclic part largest-width-first while the
// position graph stays acyclic, which is exactly how the linearization's
// own output decomposes (Transfer rules acyclic, Lift rules width-bounded).
#ifndef RBDA_CHASE_SEMI_WIDTH_H_
#define RBDA_CHASE_SEMI_WIDTH_H_

#include <vector>

#include "constraints/tgd.h"

namespace rbda {

struct SemiWidthDecomposition {
  std::vector<size_t> bounded;  // indexes into the input (Σ1)
  std::vector<size_t> acyclic;  // indexes into the input (Σ2)
  size_t semi_width = 0;        // max width over Σ1
};

/// Greedy decomposition of `tgds` (linear TGDs) minimizing the width of
/// the bounded part.
SemiWidthDecomposition ComputeSemiWidth(const std::vector<Tgd>& tgds);

}  // namespace rbda

#endif  // RBDA_CHASE_SEMI_WIDTH_H_
