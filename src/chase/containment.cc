#include "chase/containment.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <mutex>
#include <unordered_map>

#include "chase/relevance.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/trace.h"

namespace rbda {

namespace {

struct ContainmentMetrics {
  Counter* checks;
  Counter* checks_linear;
  Counter* hom_checks;
  Counter* hom_checks_ok;
  Counter* activeness_checks;
  Counter* cache_hits;
  Counter* cache_misses;
  Counter* cache_evictions;
  Distribution* check_us;
  // check_us split by containment-cache outcome; cache-off checks count
  // as misses (they did the full chase either way).
  Distribution* check_hit_us;
  Distribution* check_miss_us;
  Distribution* linear_depth;
  // Goal-directed pruning (chase/relevance.h): checks that ran with
  // pruning on, total constraints the relevance analysis dropped, and
  // checks the signature prefilter answered without chasing.
  Counter* prune_checks;
  Counter* prune_constraints;
  Counter* prune_prefilter_hits;
  // Checks answered by the witness-reuse countermodel (relevance.h):
  // a finite model refuting the goal without running the chase.
  Counter* prune_countermodel_hits;
  // The linear engine bypasses chase.cc's Engine, so it feeds the shared
  // chase.* counters itself (the registry hands back the same handles).
  Counter* chase_rounds;
  Counter* chase_triggers_tgd;
  Counter* chase_facts_created;
  Counter* chase_exhausted_facts;
};

const ContainmentMetrics& Metrics() {
  static const ContainmentMetrics m = [] {
    MetricsRegistry& r = MetricsRegistry::Default();
    return ContainmentMetrics{
        r.GetCounter("containment.checks"),
        r.GetCounter("containment.checks.linear"),
        r.GetCounter("containment.hom_checks"),
        r.GetCounter("containment.hom_checks.succeeded"),
        r.GetCounter("containment.activeness_checks"),
        r.GetCounter("containment.cache.hits"),
        r.GetCounter("containment.cache.misses"),
        r.GetCounter("containment.cache.evictions"),
        r.GetDistribution("containment.check_us"),
        r.GetDistribution("containment.check_us.hit"),
        r.GetDistribution("containment.check_us.miss"),
        r.GetDistribution("containment.linear.depth"),
        r.GetCounter("containment.prune.checks"),
        r.GetCounter("containment.prune.constraints_pruned"),
        r.GetCounter("containment.prune.prefilter_hits"),
        r.GetCounter("containment.prune.countermodel_hits"),
        r.GetCounter("chase.rounds"),
        r.GetCounter("chase.triggers.tgd"),
        r.GetCounter("chase.facts_created"),
        r.GetCounter("chase.exhausted.facts"),
    };
  }();
  return m;
}

// ---- Containment memoization (see the header comment). ----
//
// A key is a canonical word sequence: the start instance's facts sorted
// (its in-memory order is hash-map dependent), then the goal, constraints,
// and engine options in caller order with length prefixes so adjacent
// sections cannot alias. Variables and nulls are renamed to dense ids by
// first occurrence in that encoding order, so repeated Decide calls —
// whose reductions mint FreshVariable/FreshNull terms at ever-increasing
// ids but with identical structure — canonicalize to the same key.
// (Constants stay rigid: their identity links the instance to the goal and
// to interned accessible-constant facts.) Full keys are compared on
// lookup, so a 64-bit hash collision cannot produce a wrong verdict.

using CacheKey = std::vector<uint64_t>;

struct CacheKeyHash {
  size_t operator()(const CacheKey& key) const {
    uint64_t h = 0x243f6a8885a308d3ULL ^ key.size();
    for (uint64_t w : key) {
      h ^= w + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
      h *= 0xbf58476d1ce4e5b9ULL;
    }
    return static_cast<size_t>(h ^ (h >> 29));
  }
};

// Renames variables and nulls to first-occurrence dense ids (kind-tagged
// in the top bits so a variable can never alias a null or a constant).
// Canonical under any order-preserving renaming: sorting the start facts
// by raw term bits yields the same relative order before and after such a
// renaming, so the first-occurrence sequence matches too.
class TermCanonicalizer {
 public:
  uint64_t Encode(Term t) {
    if (t.IsConstant()) return (1ULL << 62) | t.raw();
    uint64_t tag = t.IsVariable() ? (2ULL << 62) : (3ULL << 62);
    auto [it, inserted] = ids_.emplace(t.raw(), next_);
    if (inserted) ++next_;
    return tag | it->second;
  }

 private:
  std::unordered_map<uint64_t, uint64_t> ids_;
  uint64_t next_ = 0;
};

void AppendAtom(const Atom& atom, TermCanonicalizer* canon, CacheKey* key) {
  key->push_back(atom.relation);
  key->push_back(atom.args.size());
  for (const Term& t : atom.args) key->push_back(canon->Encode(t));
}

void AppendAtoms(const std::vector<Atom>& atoms, TermCanonicalizer* canon,
                 CacheKey* key) {
  key->push_back(atoms.size());
  for (const Atom& a : atoms) AppendAtom(a, canon, key);
}

void AppendInstance(const Instance& instance, TermCanonicalizer* canon,
                    CacheKey* key) {
  std::vector<Fact> sorted;
  sorted.reserve(instance.NumFacts());
  instance.ForEachFact([&](FactRef f) { sorted.push_back(Fact(f)); });
  std::sort(sorted.begin(), sorted.end());
  key->push_back(sorted.size());
  for (const Fact& f : sorted) {
    key->push_back(f.relation);
    key->push_back(f.args.size());
    for (const Term& t : f.args) key->push_back(canon->Encode(t));
  }
}

void AppendSigma(const ConstraintSet& sigma, TermCanonicalizer* canon,
                 CacheKey* key) {
  key->push_back(sigma.tgds.size());
  for (const Tgd& tgd : sigma.tgds) {
    AppendAtoms(tgd.body(), canon, key);
    AppendAtoms(tgd.head(), canon, key);
  }
  key->push_back(sigma.fds.size());
  for (const Fd& fd : sigma.fds) {
    key->push_back(fd.relation);
    key->push_back(fd.determiners.size());
    for (uint32_t p : fd.determiners) key->push_back(p);
    key->push_back(fd.determined);
  }
}

CacheKey MakeGenericKey(const Instance& start, const std::vector<Atom>& goal,
                        const ConstraintSet& sigma,
                        const ChaseOptions& options,
                        const std::vector<CardinalityRule>& rules) {
  CacheKey key;
  TermCanonicalizer canon;
  key.push_back(0);  // engine tag: generic
  AppendInstance(start, &canon, &key);
  AppendAtoms(goal, &canon, &key);
  AppendSigma(sigma, &canon, &key);
  key.push_back(options.max_rounds);
  key.push_back(options.max_facts);
  // Pruning is derived from (goal, Σ, rules) — all already in the key —
  // but the MODE must still be keyed: a pruned run can be definite where
  // the unpruned run is kUnknown, so the two must not alias.
  key.push_back((options.record_trace ? 1u : 0u) |
                (options.use_semi_naive ? 2u : 0u) |
                (options.prune_to_goal ? 4u : 0u) |
                (options.inject_overprune_for_testing ? 8u : 0u));
  key.push_back(rules.size());
  for (const CardinalityRule& rule : rules) {
    key.push_back(rule.source_rel);
    key.push_back(rule.input_positions.size());
    for (uint32_t p : rule.input_positions) key.push_back(p);
    key.push_back(rule.target_rel);
    key.push_back(rule.bound);
    key.push_back(rule.accessible_rel);
    key.push_back(rule.require_accessible ? 1 : 0);
  }
  return key;
}

CacheKey MakeLinearKey(const Instance& start, const std::vector<Atom>& goal,
                       const std::vector<Tgd>& linear_tgds,
                       uint64_t max_depth, uint64_t max_facts,
                       const ChaseOptions& options) {
  CacheKey key;
  TermCanonicalizer canon;
  key.push_back(1);  // engine tag: linear
  AppendInstance(start, &canon, &key);
  AppendAtoms(goal, &canon, &key);
  key.push_back(linear_tgds.size());
  for (const Tgd& tgd : linear_tgds) {
    AppendAtoms(tgd.body(), &canon, &key);
    AppendAtoms(tgd.head(), &canon, &key);
  }
  key.push_back(max_depth);
  key.push_back(max_facts);
  // Keyed for the same reason as the generic engine: pruned runs can be
  // strictly more definite than unpruned ones.
  key.push_back((options.prune_to_goal ? 1u : 0u) |
                (options.inject_overprune_for_testing ? 2u : 0u));
  return key;
}

// The memoization cache, sharded by key hash so parallel containment
// calls (fuzz cases, oracle sweeps, bench sweeps under --jobs) do not
// serialize on one mutex. Each shard is an independent mutex-guarded map
// with its own epoch eviction and its own hit/miss/eviction counters
// ("containment.cache.shardNN.*"); the aggregate "containment.cache.*"
// counters keep their historical meaning and are incremented at the call
// sites, so existing dashboards and tests see identical totals.
class ContainmentCache {
 public:
  static constexpr size_t kShards = 8;

  static ContainmentCache& Get() {
    static ContainmentCache* cache = new ContainmentCache();
    return *cache;
  }

  bool Lookup(const CacheKey& key, ContainmentOutcome* out) {
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(key);
    if (it == shard.map.end()) {
      shard.misses->Increment();
      return false;
    }
    shard.hits->Increment();
    *out = it->second;
    return true;
  }

  void Store(const CacheKey& key, const ContainmentOutcome& outcome) {
    // Entries hold the final chase instance; keep the biggest ones out so
    // the cache stays a cache, not a leak.
    if (outcome.chase.instance.NumFacts() > kMaxCachedFacts) return;
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    if (shard.map.size() >= kMaxEntriesPerShard) {
      Metrics().cache_evictions->Increment(shard.map.size());
      shard.evictions->Increment(shard.map.size());
      shard.map.clear();  // epoch eviction: simple and O(1) amortized
    }
    shard.map.emplace(key, outcome);
    shard.size->Set(shard.map.size());
  }

  void Clear() {
    for (Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mu);
      shard.map.clear();
      shard.size->Set(0);
    }
  }

  size_t Size() {
    size_t total = 0;
    for (Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mu);
      total += shard.map.size();
    }
    return total;
  }

 private:
  // Same total capacity as the pre-sharded cache (256 entries).
  static constexpr size_t kMaxEntriesPerShard = 32;
  static constexpr size_t kMaxCachedFacts = 50000;

  struct Shard {
    std::mutex mu;
    std::unordered_map<CacheKey, ContainmentOutcome, CacheKeyHash> map;
    Counter* hits = nullptr;
    Counter* misses = nullptr;
    Counter* evictions = nullptr;
    Gauge* size = nullptr;  // current occupancy (of kMaxEntriesPerShard)
  };

  ContainmentCache() {
    MetricsRegistry& r = MetricsRegistry::Default();
    for (size_t i = 0; i < kShards; ++i) {
      std::string prefix =
          "containment.cache.shard" + std::to_string(i) + ".";
      shards_[i].hits = r.GetCounter(prefix + "hits");
      shards_[i].misses = r.GetCounter(prefix + "misses");
      shards_[i].evictions = r.GetCounter(prefix + "evictions");
      shards_[i].size = r.GetGauge(prefix + "size");
    }
  }

  Shard& ShardFor(const CacheKey& key) {
    return shards_[CacheKeyHash{}(key) % kShards];
  }

  Shard shards_[kShards];
};

std::string GoalRelationName(const std::vector<Atom>& goal,
                             const Universe* universe) {
  if (goal.empty() || universe == nullptr) return "";
  return universe->RelationName(goal[0].relation);
}

const char* VerdictName(ContainmentVerdict v) {
  switch (v) {
    case ContainmentVerdict::kContained:
      return "contained";
    case ContainmentVerdict::kNotContained:
      return "not_contained";
    case ContainmentVerdict::kUnknown:
      return "unknown";
  }
  return "?";
}

}  // namespace

ContainmentOutcome CheckContainment(
    const ConjunctiveQuery& q, const ConjunctiveQuery& q_prime,
    const ConstraintSet& sigma, Universe* universe,
    const ChaseOptions& options,
    const std::vector<CardinalityRule>& cardinality_rules) {
  return CheckContainmentFrom(q.CanonicalDatabase(), q_prime.atoms(), sigma,
                              universe, options, cardinality_rules);
}

ContainmentOutcome CheckContainmentFrom(
    const Instance& start, const std::vector<Atom>& goal,
    const ConstraintSet& sigma, Universe* universe,
    const ChaseOptions& options,
    const std::vector<CardinalityRule>& cardinality_rules) {
  Metrics().checks->Increment();
  ScopedTimer timer(Metrics().check_us);
  TraceSpan span("containment.check");

  CacheKey key;
  if (options.use_containment_cache) {
    key = MakeGenericKey(start, goal, sigma, options, cardinality_rules);
    ContainmentOutcome cached;
    if (ContainmentCache::Get().Lookup(key, &cached)) {
      Metrics().cache_hits->Increment();
      uint64_t elapsed = timer.ElapsedMicros();
      Metrics().check_hit_us->Record(elapsed);
      // A hit did no chase work: attribute only the lookup cost.
      QueryProfiler::Default().RecordCheck(ContainmentCheckRecord{
          "", GoalRelationName(goal, universe), elapsed, 0, 0, 0, 0, true});
      if (span.active()) {
        span.AddStr("cache", "hit");
        span.AddStr("verdict", VerdictName(cached.verdict));
      }
      return cached;
    }
    Metrics().cache_misses->Increment();
  }

  // Goal-directed mode (chase/relevance.h): restrict chase firing to the
  // constraints backward-reachable from the goal, and try the signature
  // prefilter before chasing at all. The prefilter's kNotContained is only
  // sound when no FD can conflict — a conflict would make the containment
  // vacuously kContained, which the signature abstraction cannot see.
  RelevanceResult relevance;
  ChaseOptions chase_options = options;
  uint64_t pruned_constraints = 0;
  bool prefiltered = false;
  if (options.prune_to_goal) {
    relevance =
        ComputeRelevance(goal, sigma, cardinality_rules,
                         universe != nullptr ? universe->NumRelations() : 0,
                         options.inject_overprune_for_testing);
    chase_options.relevant_relations = &relevance.relevant_relations;
    pruned_constraints = relevance.PrunedConstraints();
    Metrics().prune_checks->Increment();
    if (pruned_constraints > 0) {
      Metrics().prune_constraints->Increment(pruned_constraints);
    }
    prefiltered = sigma.fds.empty() &&
                  !SignatureCanReachGoal(start, goal, sigma.tgds,
                                         cardinality_rules,
                                         relevance.relevant_relations);
  }
  // Second-tier prefilter: when the signature abstraction is too coarse,
  // try to exhibit a finite witness-reuse countermodel of the FULL Σ (no
  // relevance pruning — airtight soundness for kNotContained even under
  // an overprune injection). Only valid with no FDs, like the signature
  // tier: an FD conflict would make the containment vacuously true.
  bool countermodeled = false;
  if (options.prune_to_goal && !prefiltered && sigma.fds.empty()) {
    countermodeled = CounterModelRefutesGoals(start, {goal}, sigma.tgds,
                                              cardinality_rules, universe);
  }

  ContainmentOutcome out;
  if (prefiltered || countermodeled) {
    if (prefiltered) {
      Metrics().prune_prefilter_hits->Increment();
    } else {
      Metrics().prune_countermodel_hits->Increment();
    }
    out.verdict = ContainmentVerdict::kNotContained;
    out.chase.status = ChaseStatus::kCompleted;
    out.chase.instance = start;
  } else {
    bool goal_reached = false;
    out.chase = RunChaseUntil(start, sigma, goal, universe, &goal_reached,
                              chase_options, cardinality_rules);
    if (out.chase.status == ChaseStatus::kFdConflict) {
      // No instance satisfies Q together with Σ, so the containment holds
      // vacuously.
      out.verdict = ContainmentVerdict::kContained;
    } else if (goal_reached) {
      out.verdict = ContainmentVerdict::kContained;
    } else if (out.chase.status == ChaseStatus::kCompleted) {
      out.verdict = ContainmentVerdict::kNotContained;
    } else {
      out.verdict = ContainmentVerdict::kUnknown;
    }
  }
  uint64_t elapsed = timer.ElapsedMicros();
  Metrics().check_miss_us->Record(elapsed);
  QueryProfiler::Default().RecordCheck(ContainmentCheckRecord{
      "", GoalRelationName(goal, universe), elapsed, out.chase.rounds,
      out.chase.instance.NumFacts(), out.chase.goal_checks,
      pruned_constraints, false});
  if (span.active()) {
    span.AddStr("cache", options.use_containment_cache ? "miss" : "off");
    span.AddStr("verdict", VerdictName(out.verdict));
    span.AddInt("rounds", static_cast<int64_t>(out.chase.rounds));
    span.AddInt("facts",
                static_cast<int64_t>(out.chase.instance.NumFacts()));
    span.AddInt("pruned_constraints",
                static_cast<int64_t>(pruned_constraints));
    if (prefiltered) span.AddStr("prefilter", "hit");
    if (countermodeled) span.AddStr("countermodel", "hit");
  }
  if (options.use_containment_cache) {
    ContainmentCache::Get().Store(key, out);
  }
  return out;
}

ContainmentOutcome CheckUcqContainment(const UnionQuery& q,
                                       const UnionQuery& q_prime,
                                       const ConstraintSet& sigma,
                                       Universe* universe,
                                       const ChaseOptions& options) {
  std::vector<std::vector<Atom>> goals;
  for (const ConjunctiveQuery& cq : q_prime.disjuncts()) {
    goals.push_back(cq.atoms());
  }
  // One relevance closure covers every disjunct: relevance depends only on
  // the goals and Σ, not on the start instance.
  RelevanceResult relevance;
  ChaseOptions chase_options = options;
  if (options.prune_to_goal) {
    relevance =
        ComputeRelevance(goals, sigma.tgds, sigma.fds, {},
                         universe != nullptr ? universe->NumRelations() : 0,
                         options.inject_overprune_for_testing);
    chase_options.relevant_relations = &relevance.relevant_relations;
  }
  ContainmentOutcome overall;
  overall.verdict = ContainmentVerdict::kContained;  // empty Q is contained
  for (const ConjunctiveQuery& cq : q.disjuncts()) {
    Instance db = cq.CanonicalDatabase();
    ContainmentVerdict verdict;
    ChaseResult chase;
    bool prefiltered = false;
    if (options.prune_to_goal && sigma.fds.empty()) {
      std::vector<bool> closure = SignatureClosure(
          db, sigma.tgds, {}, relevance.relevant_relations);
      prefiltered = true;
      for (const std::vector<Atom>& g : goals) {
        if (GoalWithinSignature(g, closure)) {
          prefiltered = false;
          break;
        }
      }
    }
    bool countermodeled = false;
    if (options.prune_to_goal && !prefiltered && sigma.fds.empty()) {
      // A countermodel must refute EVERY disjunct of q' to certify that
      // this disjunct of q is a counterexample.
      countermodeled =
          CounterModelRefutesGoals(db, goals, sigma.tgds, {}, universe);
    }
    if (prefiltered || countermodeled) {
      if (prefiltered) {
        Metrics().prune_prefilter_hits->Increment();
      } else {
        Metrics().prune_countermodel_hits->Increment();
      }
      verdict = ContainmentVerdict::kNotContained;
      chase.status = ChaseStatus::kCompleted;
      chase.instance = std::move(db);
    } else {
      bool goal_reached = false;
      chase = RunChaseUntilAny(db, sigma, goals, universe, &goal_reached,
                               chase_options);
      if (chase.status == ChaseStatus::kFdConflict || goal_reached) {
        verdict = ContainmentVerdict::kContained;
      } else if (chase.status == ChaseStatus::kCompleted) {
        verdict = ContainmentVerdict::kNotContained;
      } else {
        verdict = ContainmentVerdict::kUnknown;
      }
    }
    overall.chase = std::move(chase);
    if (verdict == ContainmentVerdict::kNotContained) {
      // A definite counterexample disjunct settles the whole containment.
      overall.verdict = verdict;
      return overall;
    }
    if (verdict == ContainmentVerdict::kUnknown) {
      overall.verdict = ContainmentVerdict::kUnknown;
    }
  }
  return overall;
}

uint64_t JohnsonKlugDepthBound(size_t goal_atoms, size_t sigma_bounded,
                               size_t sigma_acyclic, size_t arity,
                               size_t width) {
  // Lemma E.6: the path between a match element and its image parent has
  // length at most |Σ1| * m^(w+1); with an acyclic part Σ2 the path gains
  // at most |Σ2| extra edges (Prop 5.6). A tight match of a query with k
  // atoms therefore sits at depth at most k * (that bound). We use
  // max(arity, 2) and max(goal_atoms, 1) so degenerate inputs keep a
  // positive bound.
  uint64_t m = std::max<uint64_t>(arity, 2);
  uint64_t per_hop = 1;
  for (size_t i = 0; i < width + 1; ++i) {
    // Saturating power to avoid overflow on adversarial inputs.
    if (per_hop > (1ULL << 40) / m) {
      per_hop = 1ULL << 40;
      break;
    }
    per_hop *= m;
  }
  uint64_t path = std::max<uint64_t>(sigma_bounded, 1) * per_hop +
                  sigma_acyclic;
  return std::max<uint64_t>(goal_atoms, 1) * path;
}

ContainmentOutcome CheckLinearContainment(const ConjunctiveQuery& q,
                                          const ConjunctiveQuery& q_prime,
                                          const std::vector<Tgd>& linear_tgds,
                                          Universe* universe,
                                          uint64_t max_depth,
                                          uint64_t max_facts,
                                          const ChaseOptions& options) {
  return CheckLinearContainmentFrom(q.CanonicalDatabase(), q_prime.atoms(),
                                    linear_tgds, universe, max_depth,
                                    max_facts, options);
}

ContainmentOutcome CheckLinearContainmentFrom(
    const Instance& start, const std::vector<Atom>& goal,
    const std::vector<Tgd>& linear_tgds, Universe* universe,
    uint64_t max_depth, uint64_t max_facts, const ChaseOptions& options) {
  for (const Tgd& tgd : linear_tgds) {
    RBDA_CHECK(tgd.IsLinear());
  }
  const bool use_cache = options.use_containment_cache;

  Metrics().checks->Increment();
  Metrics().checks_linear->Increment();
  ScopedTimer timer(Metrics().check_us);
  TraceSpan span("containment.check.linear");

  CacheKey key;
  if (use_cache) {
    key = MakeLinearKey(start, goal, linear_tgds, max_depth, max_facts,
                        options);
    ContainmentOutcome cached;
    if (ContainmentCache::Get().Lookup(key, &cached)) {
      Metrics().cache_hits->Increment();
      uint64_t elapsed = timer.ElapsedMicros();
      Metrics().check_hit_us->Record(elapsed);
      QueryProfiler::Default().RecordCheck(ContainmentCheckRecord{
          "", GoalRelationName(goal, universe), elapsed, 0, 0, 0, 0, true});
      if (span.active()) {
        span.AddStr("cache", "hit");
        span.AddStr("verdict", VerdictName(cached.verdict));
      }
      return cached;
    }
    Metrics().cache_misses->Increment();
  }

  // Goal-directed mode: skip TGDs that cannot contribute to the goal (no
  // FDs here, so the relevance seeds are the goal relations alone and the
  // signature prefilter is always sound).
  RelevanceResult relevance;
  std::vector<bool> tgd_enabled;  // empty = fire everything
  uint64_t pruned_constraints = 0;
  if (options.prune_to_goal) {
    relevance =
        ComputeRelevance({goal}, linear_tgds, {}, {},
                         universe != nullptr ? universe->NumRelations() : 0,
                         options.inject_overprune_for_testing);
    pruned_constraints = relevance.PrunedConstraints();
    Metrics().prune_checks->Increment();
    if (pruned_constraints > 0) {
      Metrics().prune_constraints->Increment(pruned_constraints);
    }
    tgd_enabled.reserve(linear_tgds.size());
    for (const Tgd& tgd : linear_tgds) {
      tgd_enabled.push_back(TgdIsRelevant(tgd, relevance.relevant_relations));
    }
  }

  ContainmentOutcome out;
  Instance& inst = out.chase.instance;

  // Breadth-first by depth level: `frontier` holds the facts created at the
  // current depth; triggers are fired on frontier facts only (each linear
  // TGD has a single body atom, so every trigger is rooted at one fact).
  // A row-id-cap overflow anywhere in the linear chase degrades the check
  // to kUnknown (a budget-style outcome) instead of aborting the process —
  // the daemon serves the request as incomplete and stays up.
  bool row_ids_exhausted = false;
  std::vector<Fact> frontier;
  start.ForEachFactUntil([&](FactRef f) {
    bool inserted = false;
    if (!inst.TryAddRow(f.relation(), f.args(), &inserted).ok()) {
      row_ids_exhausted = true;
      return false;
    }
    if (inserted) frontier.push_back(Fact(f));
    return true;
  });

  // Delta-restricted when `delta` is non-null: the pre-delta state was
  // already goal-checked, and the linear instance is append-only (no EGD
  // rebuilds), so marks stay valid and only homomorphisms touching the
  // depth's new facts can newly satisfy the goal.
  auto goal_holds = [&](const Instance::DeltaMark* delta) {
    Metrics().hom_checks->IncrementCell();
    ++out.chase.goal_checks;
    bool found =
        delta != nullptr
            ? FindHomomorphismDelta(goal, inst, nullptr, *delta).has_value()
            : FindHomomorphism(goal, inst).has_value();
    if (found) Metrics().hom_checks_ok->IncrementCell();
    return found;
  };

  auto finish = [&](ContainmentVerdict verdict) {
    out.verdict = verdict;
    Metrics().linear_depth->Record(out.depth_reached);
    uint64_t elapsed = timer.ElapsedMicros();
    Metrics().check_miss_us->Record(elapsed);
    QueryProfiler::Default().RecordCheck(ContainmentCheckRecord{
        "", GoalRelationName(goal, universe), elapsed, out.chase.rounds,
        inst.NumFacts(), out.chase.goal_checks, pruned_constraints, false});
    if (span.active()) {
      span.AddStr("cache", use_cache ? "miss" : "off");
      span.AddStr("verdict", VerdictName(verdict));
      span.AddInt("depth", static_cast<int64_t>(out.depth_reached));
      span.AddInt("facts", static_cast<int64_t>(inst.NumFacts()));
      span.AddInt("pruned_constraints",
                  static_cast<int64_t>(pruned_constraints));
    }
    if (use_cache) ContainmentCache::Get().Store(key, out);
    return std::move(out);
  };

  if (row_ids_exhausted) {
    out.chase.status = ChaseStatus::kBudgetExceeded;
    out.chase.exhausted = ChaseExhausted::kFacts;
    return finish(ContainmentVerdict::kUnknown);
  }

  if (options.prune_to_goal &&
      !SignatureCanReachGoal(inst, goal, linear_tgds, {},
                             relevance.relevant_relations)) {
    // The goal's relations are not even signature-reachable: no depth of
    // chasing can produce a match, and with no FDs the (possibly
    // unbounded) full chase is a counter-model.
    Metrics().prune_prefilter_hits->Increment();
    out.chase.status = ChaseStatus::kCompleted;
    if (span.active()) span.AddStr("prefilter", "hit");
    return finish(ContainmentVerdict::kNotContained);
  }

  if (goal_holds(nullptr)) {
    return finish(ContainmentVerdict::kContained);
  }

  // Second-tier prefilter: a finite witness-reuse countermodel refutes
  // the goal without descending the (possibly exponential) chase tree.
  // Linear TGDs have no FDs, so the countermodel is always sound here.
  if (options.prune_to_goal &&
      CounterModelRefutesGoals(inst, {goal}, linear_tgds, {}, universe)) {
    Metrics().prune_countermodel_hits->Increment();
    out.chase.status = ChaseStatus::kCompleted;
    if (span.active()) span.AddStr("countermodel", "hit");
    return finish(ContainmentVerdict::kNotContained);
  }

  for (uint64_t depth = 1; depth <= max_depth && !frontier.empty(); ++depth) {
    out.depth_reached = depth;
    // Everything below the mark was goal-checked after the previous depth
    // (or initially), so the post-depth check can be delta-restricted.
    Instance::DeltaMark depth_mark = inst.Mark();
    std::vector<Fact> next;
    for (const Fact& fact : frontier) {
      if (row_ids_exhausted) break;
      Instance just_fact;
      just_fact.AddFact(fact);
      for (size_t ti = 0; ti < linear_tgds.size(); ++ti) {
        if (!tgd_enabled.empty() && !tgd_enabled[ti]) continue;  // pruned
        const Tgd& tgd = linear_tgds[ti];
        if (row_ids_exhausted) break;
        if (tgd.body()[0].relation != fact.relation) continue;
        // All body matches of this single-atom body against `fact`.
        ForEachHomomorphism(
            tgd.body(), just_fact, nullptr, [&](const Substitution& sub) {
              Substitution seed;
              for (Term x : tgd.ExportedVariables()) {
                seed.emplace(x, ApplyToTerm(sub, x));
              }
              Metrics().activeness_checks->IncrementCell();
              if (FindHomomorphism(tgd.head(), inst, &seed).has_value()) {
                return true;  // not active
              }
              Substitution extension = seed;
              for (Term y : tgd.ExistentialVariables()) {
                extension.emplace(y, universe->FreshNull());
              }
              uint64_t created_count = 0;
              for (const Atom& h : tgd.head()) {
                Fact created = ApplyToAtom(extension, h);
                bool inserted = false;
                if (!inst.TryAddFact(created, &inserted).ok()) {
                  row_ids_exhausted = true;
                  return false;  // stop enumerating; degrade below
                }
                if (inserted) {
                  next.push_back(created);
                  ++created_count;
                }
              }
              ++out.chase.tgd_steps;
              Metrics().chase_triggers_tgd->IncrementCell();
              Metrics().chase_facts_created->IncrementCell(created_count);
              return true;
            });
      }
    }
    out.chase.rounds = depth;
    Metrics().chase_rounds->IncrementCell();
    if (TraceEnabled()) {
      TraceEventRecord("chase.round.linear",
                       {{"depth", static_cast<int64_t>(depth)},
                        {"frontier", static_cast<int64_t>(next.size())},
                        {"facts", static_cast<int64_t>(inst.NumFacts())}});
    }
    if (goal_holds(inst.MarkValid(depth_mark) ? &depth_mark : nullptr)) {
      return finish(ContainmentVerdict::kContained);
    }
    if (row_ids_exhausted || inst.NumFacts() > max_facts) {
      out.chase.status = ChaseStatus::kBudgetExceeded;
      out.chase.exhausted = ChaseExhausted::kFacts;
      Metrics().chase_exhausted_facts->IncrementCell();
      return finish(ContainmentVerdict::kUnknown);
    }
    frontier = std::move(next);
  }

  // Empty frontier: the chase terminated before the depth bound — exact
  // answer. Otherwise the depth bound was reached: complete by the
  // Johnson–Klug argument when max_depth is the JK bound for this
  // constraint set.
  out.chase.status = ChaseStatus::kCompleted;
  return finish(ContainmentVerdict::kNotContained);
}

void ClearContainmentCache() { ContainmentCache::Get().Clear(); }

size_t ContainmentCacheSize() { return ContainmentCache::Get().Size(); }

}  // namespace rbda
