#include "chase/containment.h"

#include <algorithm>
#include <cmath>
#include <deque>

namespace rbda {

ContainmentOutcome CheckContainment(
    const ConjunctiveQuery& q, const ConjunctiveQuery& q_prime,
    const ConstraintSet& sigma, Universe* universe,
    const ChaseOptions& options,
    const std::vector<CardinalityRule>& cardinality_rules) {
  return CheckContainmentFrom(q.CanonicalDatabase(), q_prime.atoms(), sigma,
                              universe, options, cardinality_rules);
}

ContainmentOutcome CheckContainmentFrom(
    const Instance& start, const std::vector<Atom>& goal,
    const ConstraintSet& sigma, Universe* universe,
    const ChaseOptions& options,
    const std::vector<CardinalityRule>& cardinality_rules) {
  ContainmentOutcome out;
  bool goal_reached = false;
  out.chase = RunChaseUntil(start, sigma, goal, universe, &goal_reached,
                            options, cardinality_rules);
  if (out.chase.status == ChaseStatus::kFdConflict) {
    // No instance satisfies Q together with Σ, so the containment holds
    // vacuously.
    out.verdict = ContainmentVerdict::kContained;
  } else if (goal_reached) {
    out.verdict = ContainmentVerdict::kContained;
  } else if (out.chase.status == ChaseStatus::kCompleted) {
    out.verdict = ContainmentVerdict::kNotContained;
  } else {
    out.verdict = ContainmentVerdict::kUnknown;
  }
  return out;
}

ContainmentOutcome CheckUcqContainment(const UnionQuery& q,
                                       const UnionQuery& q_prime,
                                       const ConstraintSet& sigma,
                                       Universe* universe,
                                       const ChaseOptions& options) {
  std::vector<std::vector<Atom>> goals;
  for (const ConjunctiveQuery& cq : q_prime.disjuncts()) {
    goals.push_back(cq.atoms());
  }
  ContainmentOutcome overall;
  overall.verdict = ContainmentVerdict::kContained;  // empty Q is contained
  for (const ConjunctiveQuery& cq : q.disjuncts()) {
    bool goal_reached = false;
    ChaseResult chase =
        RunChaseUntilAny(cq.CanonicalDatabase(), sigma, goals, universe,
                         &goal_reached, options);
    ContainmentVerdict verdict;
    if (chase.status == ChaseStatus::kFdConflict || goal_reached) {
      verdict = ContainmentVerdict::kContained;
    } else if (chase.status == ChaseStatus::kCompleted) {
      verdict = ContainmentVerdict::kNotContained;
    } else {
      verdict = ContainmentVerdict::kUnknown;
    }
    overall.chase = std::move(chase);
    if (verdict == ContainmentVerdict::kNotContained) {
      // A definite counterexample disjunct settles the whole containment.
      overall.verdict = verdict;
      return overall;
    }
    if (verdict == ContainmentVerdict::kUnknown) {
      overall.verdict = ContainmentVerdict::kUnknown;
    }
  }
  return overall;
}

uint64_t JohnsonKlugDepthBound(size_t goal_atoms, size_t sigma_bounded,
                               size_t sigma_acyclic, size_t arity,
                               size_t width) {
  // Lemma E.6: the path between a match element and its image parent has
  // length at most |Σ1| * m^(w+1); with an acyclic part Σ2 the path gains
  // at most |Σ2| extra edges (Prop 5.6). A tight match of a query with k
  // atoms therefore sits at depth at most k * (that bound). We use
  // max(arity, 2) and max(goal_atoms, 1) so degenerate inputs keep a
  // positive bound.
  uint64_t m = std::max<uint64_t>(arity, 2);
  uint64_t per_hop = 1;
  for (size_t i = 0; i < width + 1; ++i) {
    // Saturating power to avoid overflow on adversarial inputs.
    if (per_hop > (1ULL << 40) / m) {
      per_hop = 1ULL << 40;
      break;
    }
    per_hop *= m;
  }
  uint64_t path = std::max<uint64_t>(sigma_bounded, 1) * per_hop +
                  sigma_acyclic;
  return std::max<uint64_t>(goal_atoms, 1) * path;
}

ContainmentOutcome CheckLinearContainment(const ConjunctiveQuery& q,
                                          const ConjunctiveQuery& q_prime,
                                          const std::vector<Tgd>& linear_tgds,
                                          Universe* universe,
                                          uint64_t max_depth,
                                          uint64_t max_facts) {
  return CheckLinearContainmentFrom(q.CanonicalDatabase(), q_prime.atoms(),
                                    linear_tgds, universe, max_depth,
                                    max_facts);
}

ContainmentOutcome CheckLinearContainmentFrom(
    const Instance& start, const std::vector<Atom>& goal,
    const std::vector<Tgd>& linear_tgds, Universe* universe,
    uint64_t max_depth, uint64_t max_facts) {
  for (const Tgd& tgd : linear_tgds) {
    RBDA_CHECK(tgd.IsLinear());
  }

  ContainmentOutcome out;
  Instance& inst = out.chase.instance;

  // Breadth-first by depth level: `frontier` holds the facts created at the
  // current depth; triggers are fired on frontier facts only (each linear
  // TGD has a single body atom, so every trigger is rooted at one fact).
  std::vector<Fact> frontier;
  start.ForEachFact([&](const Fact& f) {
    if (inst.AddFact(f)) frontier.push_back(f);
  });

  auto goal_holds = [&]() {
    return FindHomomorphism(goal, inst).has_value();
  };

  if (goal_holds()) {
    out.verdict = ContainmentVerdict::kContained;
    return out;
  }

  for (uint64_t depth = 1; depth <= max_depth && !frontier.empty(); ++depth) {
    out.depth_reached = depth;
    std::vector<Fact> next;
    for (const Fact& fact : frontier) {
      Instance just_fact;
      just_fact.AddFact(fact);
      for (const Tgd& tgd : linear_tgds) {
        if (tgd.body()[0].relation != fact.relation) continue;
        // All body matches of this single-atom body against `fact`.
        ForEachHomomorphism(
            tgd.body(), just_fact, nullptr, [&](const Substitution& sub) {
              Substitution seed;
              for (Term x : tgd.ExportedVariables()) {
                seed.emplace(x, ApplyToTerm(sub, x));
              }
              if (FindHomomorphism(tgd.head(), inst, &seed).has_value()) {
                return true;  // not active
              }
              Substitution extension = seed;
              for (Term y : tgd.ExistentialVariables()) {
                extension.emplace(y, universe->FreshNull());
              }
              for (const Atom& h : tgd.head()) {
                Fact created = ApplyToAtom(extension, h);
                if (inst.AddFact(created)) next.push_back(created);
              }
              ++out.chase.tgd_steps;
              return true;
            });
      }
    }
    out.chase.rounds = depth;
    if (goal_holds()) {
      out.verdict = ContainmentVerdict::kContained;
      return out;
    }
    if (inst.NumFacts() > max_facts) {
      out.verdict = ContainmentVerdict::kUnknown;
      out.chase.status = ChaseStatus::kBudgetExceeded;
      return out;
    }
    frontier = std::move(next);
  }

  if (frontier.empty()) {
    // Chase terminated before the depth bound: exact answer.
    out.verdict = ContainmentVerdict::kNotContained;
  } else {
    // Depth bound reached: complete by the Johnson–Klug argument when
    // max_depth is the JK bound for this constraint set.
    out.verdict = ContainmentVerdict::kNotContained;
  }
  out.chase.status = ChaseStatus::kCompleted;
  return out;
}

}  // namespace rbda
