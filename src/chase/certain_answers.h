// Certain answers of a CQ over an incomplete instance under constraints:
// the tuples of the instance's own values that hold in EVERY model of Σ
// extending it. Computed by chasing and keeping the answers built from
// non-null values (the classical open-world semantics; plan middleware
// uses the UCQ rewriting of core/rewriting.h for the same job when it must
// stay inside relational algebra).
#ifndef RBDA_CHASE_CERTAIN_ANSWERS_H_
#define RBDA_CHASE_CERTAIN_ANSWERS_H_

#include "chase/chase.h"
#include "logic/conjunctive_query.h"

namespace rbda {

struct CertainAnswersResult {
  std::vector<std::vector<Term>> answers;  // sorted, deduplicated
  bool complete = true;  // false when the chase budget ran out (answers are
                         // then still sound, possibly missing)
  bool inconsistent = false;  // Σ + data is unsatisfiable (FD clash):
                              // everything is certain; answers = eval on
                              // the original data for usability
};

/// Computes the certain answers of `q` over `data` under `sigma`.
StatusOr<CertainAnswersResult> CertainAnswers(const ConjunctiveQuery& q,
                                              const Instance& data,
                                              const ConstraintSet& sigma,
                                              Universe* universe,
                                              const ChaseOptions& options = {});

}  // namespace rbda

#endif  // RBDA_CHASE_CERTAIN_ANSWERS_H_
