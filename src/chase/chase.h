// The chase (paper §2, "Query containment and chase proofs").
//
// Starting from an instance, repeatedly fire active triggers of TGDs (add
// head facts, minting fresh nulls for existential variables) and repair FD
// violations (EGD steps that merge terms). The run is round-based and
// budgeted; it records a proof trace that later stages (plan synthesis)
// consume.
//
// Trigger enumeration is *semi-naive* (delta-driven): each round only
// looks for body homomorphisms with at least one atom in the facts added
// since the previous round started (the delta), because a trigger whose
// atoms all predate the delta was already considered — and the restricted
// chase's activeness test is monotone, so a once-inactive trigger stays
// inactive while facts only accumulate. The engine falls back to full
// (naive) evaluation exactly when that argument breaks down:
//   * on round 1, where there is no previous delta;
//   * for the round after an EGD repair merged terms — the merge rebuilds
//     the fact vectors (invalidating delta ranges) and remaps terms, so
//     activeness conclusions from before the merge no longer transfer;
//   * when ChaseOptions::use_semi_naive is off (ablation/testing).
// Goal checks in RunChaseUntil* are delta-restricted under the same rules.
//
// The engine also supports the cardinality-transfer rules produced by the
// *naive* AMonDet reduction of §3 — the "∃≥j" accessibility axioms for
// result lower bounds — under the standard chase convention that distinct
// terms denote distinct values. The paper's simplification theorems make
// these rules unnecessary; they are kept for the ablation benchmarks.
#ifndef RBDA_CHASE_CHASE_H_
#define RBDA_CHASE_CHASE_H_

#include <cstdint>
#include <vector>

#include "constraints/constraint_set.h"

namespace rbda {

/// Naive §3 lower-bound axiom: if the values at `input_positions` of some
/// binding are all accessible and `source_rel` has j ≤ k distinct matching
/// tuples, then `target_rel` must contain at least j distinct matching
/// tuples (fresh nulls fill the non-input positions of created facts).
struct CardinalityRule {
  RelationId source_rel = 0;
  std::vector<uint32_t> input_positions;
  RelationId target_rel = 0;
  uint32_t bound = 1;              // k
  RelationId accessible_rel = 0;   // the unary accessible predicate
  /// When false, the rule fires for every binding regardless of
  /// accessibility (AxiomRB's unconditional lower-bound axioms).
  bool require_accessible = true;
};

struct ChaseOptions {
  uint64_t max_rounds = 1000;
  /// Fact budget, enforced *inside* rounds: a round stops at the trigger
  /// whose firing pushed the instance past the budget (exhausted=kFacts),
  /// so no single round can overshoot unboundedly.
  uint64_t max_facts = 200000;
  bool record_trace = false;
  /// Delta-driven trigger enumeration (see file comment). Off = the naive
  /// re-enumeration of every body homomorphism each round; results are
  /// homomorphically equivalent either way (ablation/property tests).
  bool use_semi_naive = true;
  /// Consult/populate the process-wide containment memoization cache when
  /// this options bag reaches CheckContainment* (no effect on RunChase
  /// itself; see chase/containment.h).
  bool use_containment_cache = true;
  /// Goal-directed relevance pruning (chase/relevance.h): the containment
  /// engines compute the relations backward-reachable from their goal and
  /// skip every TGD with no relevant head relation and every cardinality
  /// rule with an irrelevant target. Sound over-approximation — exact
  /// relevance is undecidable. Escape hatch: --prune=off / RBDA_PRUNE=0.
  /// No effect on plain RunChase (which has no goal to prune toward).
  bool prune_to_goal = true;
  /// Test-only hook (rbda_fuzz --inject-bug=overprune): deliberately drop
  /// one relevant relation from the computed set so the
  /// goal-pruned-vs-full checker can prove it catches unsound pruning.
  bool inject_overprune_for_testing = false;
  /// Set internally by the containment engines when prune_to_goal is on:
  /// the relevance bitset (indexed by RelationId) the chase restricts
  /// firing to. Null = fire everything. Not an input — callers leave it
  /// null; it is derived from (goal, Σ) and is NOT part of the
  /// memoization key, so an externally supplied filter would alias
  /// cache entries.
  const std::vector<bool>* relevant_relations = nullptr;
};

enum class ChaseStatus {
  kCompleted,       // no active triggers remain
  kBudgetExceeded,  // ran out of budget (see ChaseResult::exhausted)
  kFdConflict,      // an EGD step tried to merge two distinct constants
};

/// Which budget a kBudgetExceeded run actually tripped. Rounds and facts
/// call for different tuning (deeper recursion vs. wider breadth), so the
/// result distinguishes them.
enum class ChaseExhausted {
  kNone,    // status != kBudgetExceeded
  kRounds,  // hit ChaseOptions::max_rounds (or the linear depth bound)
  kFacts,   // hit ChaseOptions::max_facts
};

const char* ChaseExhaustedName(ChaseExhausted e);

/// One fired TGD trigger, for proof traces.
struct ChaseStep {
  size_t tgd_index = 0;        // into the ConstraintSet's tgds
  Substitution trigger;        // body homomorphism
  std::vector<Fact> added;     // facts created by this firing
  uint64_t round = 0;
};

struct ChaseResult {
  ChaseStatus status = ChaseStatus::kCompleted;
  ChaseExhausted exhausted = ChaseExhausted::kNone;  // set iff budget trip
  Instance instance;
  uint64_t rounds = 0;
  uint64_t tgd_steps = 0;
  uint64_t egd_merges = 0;
  uint64_t goal_checks = 0;  // goal homomorphism checks (RunChaseUntil*)
  std::vector<ChaseStep> trace;  // only if options.record_trace
};

/// Runs the restricted chase of `start` with `constraints` (and optional
/// cardinality rules). `universe` mints the fresh nulls.
ChaseResult RunChase(const Instance& start, const ConstraintSet& constraints,
                     Universe* universe, const ChaseOptions& options = {},
                     const std::vector<CardinalityRule>& cardinality_rules = {});

/// Runs the chase and additionally stops (successfully) as soon as `goal`
/// holds, checking after every round. Sets `*goal_reached` accordingly.
class ConjunctiveQuery;  // from logic; full include in the .cc
ChaseResult RunChaseUntil(const Instance& start,
                          const ConstraintSet& constraints,
                          const std::vector<Atom>& goal_atoms,
                          Universe* universe, bool* goal_reached,
                          const ChaseOptions& options = {},
                          const std::vector<CardinalityRule>& cardinality_rules = {});

/// Disjunctive-goal variant: stops as soon as ANY of the goals holds
/// (UCQ right-hand sides).
ChaseResult RunChaseUntilAny(
    const Instance& start, const ConstraintSet& constraints,
    const std::vector<std::vector<Atom>>& goals, Universe* universe,
    bool* goal_reached, const ChaseOptions& options = {},
    const std::vector<CardinalityRule>& cardinality_rules = {});

}  // namespace rbda

#endif  // RBDA_CHASE_CHASE_H_
