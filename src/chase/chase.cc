#include "chase/chase.h"

#include <algorithm>
#include <map>
#include <set>

#include "chase/relevance.h"
#include "logic/conjunctive_query.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace rbda {

const char* ChaseExhaustedName(ChaseExhausted e) {
  switch (e) {
    case ChaseExhausted::kNone:
      return "none";
    case ChaseExhausted::kRounds:
      return "rounds";
    case ChaseExhausted::kFacts:
      return "facts";
  }
  return "?";
}

namespace {

// Handles into the default registry, resolved once per process. Goal
// checks count under the containment.* namespace: testing Q' against the
// chased instance IS the homomorphism check the containment engines are
// built from (docs/OBSERVABILITY.md).
struct ChaseMetrics {
  Counter* runs;
  Counter* rounds;
  Counter* delta_rounds;
  Counter* delta_full_rounds;
  Counter* triggers_tgd;
  Counter* triggers_egd;
  Counter* triggers_cardinality;
  Counter* facts_created;
  Counter* fd_conflicts;
  Counter* exhausted_rounds;
  Counter* exhausted_facts;
  Counter* hom_checks;
  Counter* hom_checks_ok;
  Distribution* run_us;
  Distribution* rounds_per_run;
  Distribution* delta_size;
};

const ChaseMetrics& Metrics() {
  static const ChaseMetrics m = [] {
    MetricsRegistry& r = MetricsRegistry::Default();
    return ChaseMetrics{
        r.GetCounter("chase.runs"),
        r.GetCounter("chase.rounds"),
        r.GetCounter("chase.delta.rounds"),
        r.GetCounter("chase.delta.full_rounds"),
        r.GetCounter("chase.triggers.tgd"),
        r.GetCounter("chase.triggers.egd"),
        r.GetCounter("chase.triggers.cardinality"),
        r.GetCounter("chase.facts_created"),
        r.GetCounter("chase.fd_conflicts"),
        r.GetCounter("chase.exhausted.rounds"),
        r.GetCounter("chase.exhausted.facts"),
        r.GetCounter("containment.hom_checks"),
        r.GetCounter("containment.hom_checks.succeeded"),
        r.GetDistribution("chase.run_us"),
        r.GetDistribution("chase.rounds_per_run"),
        r.GetDistribution("chase.delta.size"),
    };
  }();
  return m;
}

// Preference order for the term kept by an EGD merge: constants survive,
// then variables (frozen query variables), then nulls; ties break on id so
// merges are deterministic.
int KindRank(Term t) {
  switch (t.kind()) {
    case TermKind::kConstant:
      return 0;
    case TermKind::kVariable:
      return 1;
    case TermKind::kNull:
      return 2;
  }
  return 3;
}

class Engine {
 public:
  Engine(const Instance& start, const ConstraintSet& constraints,
         Universe* universe, const ChaseOptions& options,
         const std::vector<CardinalityRule>& rules)
      : constraints_(constraints),
        universe_(universe),
        options_(options),
        rules_(rules) {
    result_.instance = start;
    if (options_.relevant_relations != nullptr) {
      // Goal-directed pruning (chase/relevance.h): resolve the per-index
      // enabled bits once. Pruned constraints are skipped in place so
      // ChaseStep::tgd_index keeps indexing the caller's ConstraintSet.
      const std::vector<bool>& relevant = *options_.relevant_relations;
      tgd_enabled_.reserve(constraints_.tgds.size());
      for (const Tgd& tgd : constraints_.tgds) {
        tgd_enabled_.push_back(TgdIsRelevant(tgd, relevant));
      }
      rule_enabled_.reserve(rules_.size());
      for (const CardinalityRule& rule : rules_) {
        rule_enabled_.push_back(CardinalityRuleIsRelevant(rule, relevant));
      }
    }
  }

  ChaseResult Run(const std::vector<std::vector<Atom>>* goals,
                  bool* goal_reached) {
    Metrics().runs->Increment();
    ScopedTimer run_timer(Metrics().run_us);
    TraceSpan span("chase.run");
    ChaseResult result = RunImpl(goals, goal_reached);
    Metrics().rounds_per_run->Record(result.rounds);
    if (result.status == ChaseStatus::kFdConflict) {
      Metrics().fd_conflicts->Increment();
    }
    if (result.exhausted == ChaseExhausted::kRounds) {
      Metrics().exhausted_rounds->Increment();
    } else if (result.exhausted == ChaseExhausted::kFacts) {
      Metrics().exhausted_facts->Increment();
    }
    if (span.active()) {
      span.AddInt("rounds", static_cast<int64_t>(result.rounds));
      span.AddInt("tgd_steps", static_cast<int64_t>(result.tgd_steps));
      span.AddInt("egd_merges", static_cast<int64_t>(result.egd_merges));
      span.AddInt("facts", static_cast<int64_t>(result.instance.NumFacts()));
      span.AddStr("status",
                  result.status == ChaseStatus::kCompleted   ? "completed"
                  : result.status == ChaseStatus::kFdConflict ? "fd_conflict"
                                                              : "budget");
      span.AddStr("exhausted", ChaseExhaustedName(result.exhausted));
    }
    return result;
  }

 private:
  ChaseResult RunImpl(const std::vector<std::vector<Atom>>* goals,
                      bool* goal_reached) {
    if (goal_reached) *goal_reached = false;
    // Delta-restricted when `delta` is non-null: the pre-delta state was
    // already goal-checked, so only homomorphisms touching the delta can
    // newly satisfy a goal.
    auto goal_holds = [&](const Instance::DeltaMark* delta) {
      if (goals == nullptr) return false;
      for (const std::vector<Atom>& goal : *goals) {
        Metrics().hom_checks->IncrementCell();
        ++result_.goal_checks;
        bool found =
            delta != nullptr
                ? FindHomomorphismDelta(goal, result_.instance, nullptr,
                                        *delta)
                      .has_value()
                : FindHomomorphism(goal, result_.instance).has_value();
        if (found) {
          Metrics().hom_checks_ok->IncrementCell();
          return true;
        }
      }
      return false;
    };

    if (!ApplyFdsToFixpoint()) {
      result_.status = ChaseStatus::kFdConflict;
      return std::move(result_);
    }
    if (goal_holds(nullptr)) {
      if (goal_reached) *goal_reached = true;
      result_.status = ChaseStatus::kCompleted;
      return std::move(result_);
    }

    // Facts visible at the start of the previous round's firing phase;
    // valid only while no EGD rebuild intervened (see chase.h).
    Instance::DeltaMark prev_mark;
    bool prev_mark_valid = false;

    for (uint64_t round = 1; round <= options_.max_rounds; ++round) {
      result_.rounds = round;
      Metrics().rounds->IncrementCell();
      Instance::DeltaMark round_mark = result_.instance.Mark();
      bool semi = options_.use_semi_naive && prev_mark_valid &&
                  result_.instance.MarkValid(prev_mark);
      const Instance::DeltaMark* delta = semi ? &prev_mark : nullptr;
      if (semi) {
        Metrics().delta_rounds->IncrementCell();
        Metrics().delta_size->Record(result_.instance.generation() -
                                     prev_mark.generation);
      } else {
        Metrics().delta_full_rounds->IncrementCell();
      }
      uint64_t fired = FireTgdRound(round, delta);
      if (!budget_tripped_) fired += FireCardinalityRound(delta);
      if (TraceEnabled()) {
        TraceEventRecord(
            "chase.round",
            {{"round", static_cast<int64_t>(round)},
             {"fired", static_cast<int64_t>(fired)},
             {"facts", static_cast<int64_t>(result_.instance.NumFacts())}},
            {{"mode", semi ? "delta" : "full"}});
      }
      if (!ApplyFdsToFixpoint()) {
        result_.status = ChaseStatus::kFdConflict;
        return std::move(result_);
      }
      // A goal reached within budget still wins, even on a truncated
      // round: check before reporting the budget trip.
      bool round_mark_ok = options_.use_semi_naive &&
                           result_.instance.MarkValid(round_mark);
      if (goal_holds(round_mark_ok ? &round_mark : nullptr)) {
        if (goal_reached) *goal_reached = true;
        result_.status = ChaseStatus::kCompleted;
        return std::move(result_);
      }
      if (budget_tripped_ ||
          result_.instance.NumFacts() > options_.max_facts) {
        result_.status = ChaseStatus::kBudgetExceeded;
        result_.exhausted = ChaseExhausted::kFacts;
        return std::move(result_);
      }
      if (fired == 0) {
        result_.status = ChaseStatus::kCompleted;
        return std::move(result_);
      }
      prev_mark = std::move(round_mark);
      prev_mark_valid = round_mark_ok;
    }
    result_.status = ChaseStatus::kBudgetExceeded;
    result_.exhausted = ChaseExhausted::kRounds;
    return std::move(result_);
  }

 private:
  // Fires all TGD triggers that are active at the start of the round
  // (re-checking activeness right before each firing). When `delta` is
  // non-null, only enumerates triggers with at least one body atom in the
  // delta (semi-naive); pre-delta triggers were handled in earlier rounds.
  // Stops early (budget_tripped_) when a firing pushes the instance past
  // the fact budget. Returns the number of firings.
  uint64_t FireTgdRound(uint64_t round, const Instance::DeltaMark* delta) {
    uint64_t fired = 0;
    for (size_t i = 0; i < constraints_.tgds.size(); ++i) {
      if (!tgd_enabled_.empty() && !tgd_enabled_[i]) continue;  // pruned
      const Tgd& tgd = constraints_.tgds[i];
      std::vector<Term> exported = tgd.ExportedVariables();

      // Materialize the triggers first: firing mutates the instance the
      // enumeration walks over. Deduplicate triggers by their restriction
      // to exported variables (two body matches with the same exported
      // image need only one head witness).
      std::set<std::vector<Term>> seen;
      std::vector<Substitution> triggers;
      auto collect = [&](const Substitution& sub) {
        std::vector<Term> key;
        key.reserve(exported.size());
        for (Term x : exported) {
          key.push_back(ApplyToTerm(sub, x));
        }
        if (seen.insert(std::move(key)).second) {
          triggers.push_back(sub);
        }
        return true;
      };
      if (delta != nullptr) {
        ForEachHomomorphismDelta(tgd.body(), result_.instance, nullptr,
                                 *delta, collect);
      } else {
        ForEachHomomorphism(tgd.body(), result_.instance, nullptr, collect);
      }

      for (const Substitution& trigger : triggers) {
        Substitution seed;
        for (Term x : exported) seed.emplace(x, ApplyToTerm(trigger, x));
        if (FindHomomorphism(tgd.head(), result_.instance, &seed)
                .has_value()) {
          continue;  // not active: head witness already exists
        }
        // Fire: extend the exported bindings with fresh nulls for the
        // existential variables and add the head facts.
        Substitution extension = seed;
        for (Term y : tgd.ExistentialVariables()) {
          extension.emplace(y, universe_->FreshNull());
        }
        std::vector<Fact> added;
        for (const Atom& h : tgd.head()) {
          Fact fact = ApplyToAtom(extension, h);
          // The store packs the terms in place, so the spent Fact moves
          // into the trace instead of being copied twice. A row-id-cap
          // overflow degrades like a fact-budget trip (the caller sees
          // kBudgetExceeded/kFacts) instead of aborting the process.
          bool inserted = false;
          if (!result_.instance.TryAddFact(fact, &inserted).ok()) {
            budget_tripped_ = true;
            return fired;
          }
          if (inserted) added.push_back(std::move(fact));
        }
        ++fired;
        ++result_.tgd_steps;
        Metrics().triggers_tgd->IncrementCell();
        Metrics().facts_created->IncrementCell(added.size());
        if (options_.record_trace) {
          // Record the full body homomorphism plus the fresh witnesses so
          // consumers (plan extraction) can reconstruct both the trigger
          // facts and the created facts.
          Substitution full = trigger;
          for (const auto& [var, value] : extension) full.emplace(var, value);
          result_.trace.push_back(
              ChaseStep{i, std::move(full), std::move(added), round});
        }
        if (result_.instance.NumFacts() > options_.max_facts) {
          budget_tripped_ = true;
          return fired;
        }
      }
    }
    return fired;
  }

  // Fires the naive §3 cardinality-transfer rules: see CardinalityRule.
  // Semi-naive (`delta` non-null): a binding can only newly need witnesses
  // if a delta fact raised its source-match count or newly made one of its
  // values accessible, so all other bindings are skipped — they were
  // satisfied when last processed, and `have` only grows while `j` grows
  // only through new source facts.
  uint64_t FireCardinalityRound(const Instance::DeltaMark* delta) {
    uint64_t fired = 0;
    for (size_t ri = 0; ri < rules_.size(); ++ri) {
      if (!rule_enabled_.empty() && !rule_enabled_[ri]) continue;  // pruned
      const CardinalityRule& rule = rules_[ri];
      std::set<std::vector<Term>> dirty;  // bindings with new source facts
      TermSet newly_accessible;
      if (delta != nullptr) {
        FactRange src = result_.instance.FactsOf(rule.source_rel);
        for (uint32_t i = result_.instance.DeltaBegin(*delta, rule.source_rel);
             i < src.size(); ++i) {
          std::vector<Term> key;
          key.reserve(rule.input_positions.size());
          for (uint32_t p : rule.input_positions) {
            key.push_back(src[i].arg(p));
          }
          dirty.insert(std::move(key));
        }
        if (rule.require_accessible) {
          FactRange acc = result_.instance.FactsOf(rule.accessible_rel);
          for (uint32_t i =
                   result_.instance.DeltaBegin(*delta, rule.accessible_rel);
               i < acc.size(); ++i) {
            newly_accessible.insert(acc[i].arg(0));
          }
        }
        if (dirty.empty() && newly_accessible.empty()) continue;
      }
      // Group source facts by their input-position tuple.
      std::map<std::vector<Term>, std::set<std::vector<Term>>> groups;
      for (FactRef f : result_.instance.FactsOf(rule.source_rel)) {
        std::vector<Term> key;
        key.reserve(rule.input_positions.size());
        for (uint32_t p : rule.input_positions) key.push_back(f.arg(p));
        groups[std::move(key)].insert(
            std::vector<Term>(f.args().begin(), f.args().end()));
      }
      for (const auto& [binding, matches] : groups) {
        if (delta != nullptr && dirty.count(binding) == 0) {
          bool touched = false;
          for (Term t : binding) {
            if (newly_accessible.count(t) > 0) {
              touched = true;
              break;
            }
          }
          if (!touched) continue;
        }
        // The binding values must all be accessible (unless the rule is
        // unconditional).
        if (rule.require_accessible) {
          bool accessible = true;
          for (Term t : binding) {
            if (!result_.instance.ContainsRow(rule.accessible_rel, {&t, 1})) {
              accessible = false;
              break;
            }
          }
          if (!accessible) continue;
        }
        uint64_t j = std::min<uint64_t>(rule.bound, matches.size());
        // Count distinct target facts matching the binding.
        uint64_t have = 0;
        for (FactRef f : result_.instance.FactsOf(rule.target_rel)) {
          bool match = true;
          for (size_t idx = 0; idx < rule.input_positions.size(); ++idx) {
            if (f.arg(rule.input_positions[idx]) != binding[idx]) {
              match = false;
              break;
            }
          }
          if (match) ++have;
        }
        uint32_t arity = universe_->Arity(rule.target_rel);
        while (have < j) {
          std::vector<Term> args(arity, Term());
          std::vector<bool> is_input(arity, false);
          for (size_t idx = 0; idx < rule.input_positions.size(); ++idx) {
            args[rule.input_positions[idx]] = binding[idx];
            is_input[rule.input_positions[idx]] = true;
          }
          for (uint32_t p = 0; p < arity; ++p) {
            if (!is_input[p]) args[p] = universe_->FreshNull();
          }
          bool inserted = false;
          if (!result_.instance
                   .TryAddRow(rule.target_rel, {args.data(), args.size()},
                              &inserted)
                   .ok()) {
            // Row-id space exhausted: degrade as a fact-budget trip.
            budget_tripped_ = true;
            return fired;
          }
          ++have;
          ++fired;
          Metrics().triggers_cardinality->IncrementCell();
          Metrics().facts_created->IncrementCell();
          if (result_.instance.NumFacts() > options_.max_facts) {
            // Stop at the point of violation: a single rule with a large
            // bound must not blow past the fact budget within one round.
            budget_tripped_ = true;
            return fired;
          }
        }
      }
    }
    return fired;
  }

  // Repairs FD violations by merging terms. Returns false on an attempt to
  // merge two distinct constants (the chase fails).
  //
  // Merges are accumulated in a union-find over terms (representative =
  // highest-priority member, see KindRank) and the instance is rewritten
  // once at the end, instead of rebuilding it after every single merge and
  // restarting the scan — the old behaviour was quadratic in the length of
  // merge chains. Scans repeat, resolving terms through the union-find,
  // until a full pass over all FDs finds no new merge; that final clean
  // pass certifies the fixpoint.
  bool ApplyFdsToFixpoint() {
    if (constraints_.fds.empty()) return true;
    std::unordered_map<Term, Term, TermHash> parent;
    auto find = [&](Term t) {
      Term root = t;
      for (auto it = parent.find(root); it != parent.end();
           it = parent.find(root)) {
        root = it->second;
      }
      // Path compression.
      while (t != root) {
        Term next = parent[t];
        parent[t] = root;
        t = next;
      }
      return root;
    };

    uint64_t unions = 0;
    bool changed = true;
    while (changed) {
      changed = false;
      for (const Fd& fd : constraints_.fds) {
        std::map<std::vector<Term>, Term> witness;
        for (FactRef f : result_.instance.FactsOf(fd.relation)) {
          std::vector<Term> key;
          key.reserve(fd.determiners.size());
          for (uint32_t p : fd.determiners) key.push_back(find(f.arg(p)));
          Term value = find(f.arg(fd.determined));
          auto [it, inserted] = witness.emplace(std::move(key), value);
          if (inserted) continue;
          Term a = find(it->second);
          Term b = value;
          if (a == b) continue;
          if (a.IsConstant() && b.IsConstant()) return false;
          // Keep the higher-priority term as the representative.
          if (std::make_pair(KindRank(a), a.id()) >
              std::make_pair(KindRank(b), b.id())) {
            std::swap(a, b);
          }
          parent[b] = a;
          it->second = a;
          ++unions;
          ++result_.egd_merges;
          Metrics().triggers_egd->IncrementCell();
          changed = true;
        }
      }
    }
    if (unions > 0) {
      std::unordered_map<Term, Term, TermHash> mapping;
      mapping.reserve(parent.size());
      for (const auto& [term, unused] : parent) {
        mapping.emplace(term, find(term));
      }
      result_.instance.ReplaceTerms(mapping);
    }
    return true;
  }

  const ConstraintSet& constraints_;
  Universe* universe_;
  const ChaseOptions& options_;
  const std::vector<CardinalityRule>& rules_;
  ChaseResult result_;
  // Per-index relevance filter (empty = fire everything); see ctor.
  std::vector<bool> tgd_enabled_;
  std::vector<bool> rule_enabled_;
  // Set by the firing helpers when a firing pushed the instance past
  // options_.max_facts; RunImpl then stops with exhausted = kFacts.
  bool budget_tripped_ = false;
};

}  // namespace

ChaseResult RunChase(const Instance& start, const ConstraintSet& constraints,
                     Universe* universe, const ChaseOptions& options,
                     const std::vector<CardinalityRule>& cardinality_rules) {
  Engine engine(start, constraints, universe, options, cardinality_rules);
  return engine.Run(nullptr, nullptr);
}

ChaseResult RunChaseUntil(
    const Instance& start, const ConstraintSet& constraints,
    const std::vector<Atom>& goal_atoms, Universe* universe,
    bool* goal_reached, const ChaseOptions& options,
    const std::vector<CardinalityRule>& cardinality_rules) {
  std::vector<std::vector<Atom>> goals{goal_atoms};
  Engine engine(start, constraints, universe, options, cardinality_rules);
  return engine.Run(&goals, goal_reached);
}

ChaseResult RunChaseUntilAny(
    const Instance& start, const ConstraintSet& constraints,
    const std::vector<std::vector<Atom>>& goals, Universe* universe,
    bool* goal_reached, const ChaseOptions& options,
    const std::vector<CardinalityRule>& cardinality_rules) {
  Engine engine(start, constraints, universe, options, cardinality_rules);
  return engine.Run(&goals, goal_reached);
}

}  // namespace rbda
