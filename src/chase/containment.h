// Query containment under constraints: Q ⊆_Σ Q'.
//
// Two engines:
//  * CheckContainment — generic: chase CanonDB(Q) with Σ, test Q' after
//    every round. Sound always; complete whenever the chase terminates
//    (e.g. FDs + full TGDs, weakly-acyclic TGDs). Reports kUnknown when a
//    budget runs out before termination.
//  * CheckLinearContainment — the Johnson–Klug-style engine for *linear*
//    TGDs (single body atom): a depth-bounded breadth-first chase which is
//    sound AND complete when run to the JK depth bound for IDs / linear
//    TGDs of bounded semi-width (paper Prop 5.6 / E.8). This is the engine
//    behind the paper's NP results after linearization.
//
// Both engines consult a process-wide memoization cache keyed by a
// canonical encoding of (start instance, goal, constraint set, engine
// options): Answerability's per-access-method checks and repeated Decide
// calls over the same schema re-pose identical containment problems, and a
// hit replays the stored outcome (verdict, chase statistics, final
// instance) without re-chasing. Opt out per call via
// ChaseOptions::use_containment_cache; observe via the
// containment.cache.{hits,misses,evictions} counters. Cached outcomes may
// reference labeled nulls minted by the run that populated the entry
// rather than by the caller's universe — null identity is only meaningful
// within an outcome anyway.
//
// Both engines are goal-directed by default (ChaseOptions::prune_to_goal,
// chase/relevance.h): constraints that cannot contribute to deriving the
// goal — nor to any EGD — are skipped, and a relation-signature prefilter
// answers kNotContained without chasing when the goal's relations are not
// even signature-reachable from the start instance. Pruned and unpruned
// runs agree on every definite verdict (the pruned run may be MORE
// definite where the full chase exhausts its budget); the pruning mode is
// part of the memoization key. Observe via containment.prune.{checks,
// constraints_pruned,prefilter_hits}; disable via --prune=off/RBDA_PRUNE.
#ifndef RBDA_CHASE_CONTAINMENT_H_
#define RBDA_CHASE_CONTAINMENT_H_

#include "chase/chase.h"
#include "logic/conjunctive_query.h"

namespace rbda {

enum class ContainmentVerdict {
  kContained,
  kNotContained,
  kUnknown,  // resource budget exhausted before the chase terminated
};

struct ContainmentOutcome {
  ContainmentVerdict verdict = ContainmentVerdict::kUnknown;
  ChaseResult chase;      // final chase state (proof when kContained)
  uint64_t depth_reached = 0;  // linear engine only
};

/// Generic containment check for Boolean CQs: Q ⊆_Σ Q'.
ContainmentOutcome CheckContainment(
    const ConjunctiveQuery& q, const ConjunctiveQuery& q_prime,
    const ConstraintSet& sigma, Universe* universe,
    const ChaseOptions& options = {},
    const std::vector<CardinalityRule>& cardinality_rules = {});

/// UCQ containment: Q ⊆_Σ Q' for unions of Boolean CQs. Q is contained iff
/// every disjunct of Q entails some disjunct of Q' under Σ.
ContainmentOutcome CheckUcqContainment(const UnionQuery& q,
                                       const UnionQuery& q_prime,
                                       const ConstraintSet& sigma,
                                       Universe* universe,
                                       const ChaseOptions& options = {});

/// Generic engine starting from an explicit instance (e.g. a canonical
/// database enriched with accessibility facts) instead of CanonDB(Q).
ContainmentOutcome CheckContainmentFrom(
    const Instance& start, const std::vector<Atom>& goal,
    const ConstraintSet& sigma, Universe* universe,
    const ChaseOptions& options = {},
    const std::vector<CardinalityRule>& cardinality_rules = {});

/// Johnson–Klug depth bound for a tight match of a query with
/// `goal_atoms` atoms under IDs / linear TGDs decomposed into a width-w
/// part of size `sigma_bounded` and an acyclic part of size
/// `sigma_acyclic`, over a signature of maximal arity `arity`
/// (paper Lemma E.6 and Prop 5.6/E.8).
uint64_t JohnsonKlugDepthBound(size_t goal_atoms, size_t sigma_bounded,
                               size_t sigma_acyclic, size_t arity,
                               size_t width);

/// Depth-bounded chase containment for linear TGDs (no FDs). Complete when
/// `max_depth` is at least the JK bound for the decomposed constraint set.
/// `max_facts` guards against breadth blowup (kUnknown if exceeded).
ContainmentOutcome CheckLinearContainment(const ConjunctiveQuery& q,
                                          const ConjunctiveQuery& q_prime,
                                          const std::vector<Tgd>& linear_tgds,
                                          Universe* universe,
                                          uint64_t max_depth,
                                          uint64_t max_facts = 500000,
                                          const ChaseOptions& options = {});

/// Depth-bounded linear engine starting from an explicit instance. Of the
/// options bag, the linear engine honors use_containment_cache,
/// prune_to_goal, and inject_overprune_for_testing (depth/fact budgets
/// are the explicit parameters).
ContainmentOutcome CheckLinearContainmentFrom(
    const Instance& start, const std::vector<Atom>& goal,
    const std::vector<Tgd>& linear_tgds, Universe* universe,
    uint64_t max_depth, uint64_t max_facts = 500000,
    const ChaseOptions& options = {});

/// Drops every memoized containment outcome (tests and benchmarks that
/// want to measure the uncached engines call this between runs).
void ClearContainmentCache();

/// Number of outcomes currently memoized.
size_t ContainmentCacheSize();

}  // namespace rbda

#endif  // RBDA_CHASE_CONTAINMENT_H_
