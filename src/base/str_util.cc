#include "base/str_util.h"

#include <cctype>

namespace rbda {

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string_view StripAsciiWhitespace(std::string_view s) {
  size_t b = 0;
  while (b < s.size() && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  size_t e = s.size();
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

}  // namespace rbda
