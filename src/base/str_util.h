// Small string helpers shared across modules.
#ifndef RBDA_BASE_STR_UTIL_H_
#define RBDA_BASE_STR_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace rbda {

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// Strips ASCII whitespace from both ends.
std::string_view StripAsciiWhitespace(std::string_view s);

}  // namespace rbda

#endif  // RBDA_BASE_STR_UTIL_H_
