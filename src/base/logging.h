// Lightweight assertion macros used for internal invariants.
//
// RBDA_CHECK is always on; RBDA_DCHECK compiles away in NDEBUG builds.
// Failures print the condition and location and abort, which is the
// appropriate behaviour for programming errors (user-facing errors travel
// through rbda::Status instead).
#ifndef RBDA_BASE_LOGGING_H_
#define RBDA_BASE_LOGGING_H_

#include <cstdio>
#include <cstdlib>

#define RBDA_CHECK(cond)                                                     \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "RBDA_CHECK failed: %s at %s:%d\n", #cond,        \
                   __FILE__, __LINE__);                                      \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

#ifdef NDEBUG
#define RBDA_DCHECK(cond) \
  do {                    \
  } while (0)
#else
#define RBDA_DCHECK(cond) RBDA_CHECK(cond)
#endif

#endif  // RBDA_BASE_LOGGING_H_
