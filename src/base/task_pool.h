// Work-stealing thread pool and the ParallelFor/ParallelMap facade used by
// every fan-out driver (fuzz case loop, oracle sweeps, bench sweeps,
// rbda_cli decide batch mode).
//
// Design constraints (docs/PERFORMANCE.md):
//   1. jobs=1 is the serial path: ParallelFor/ParallelMap run the body
//      inline on the calling thread, in index order, touching no thread —
//      byte-for-byte the loop they replaced. Parallelism is opt-in via an
//      explicit job count, the RBDA_JOBS environment variable, or a
//      driver's --jobs flag.
//   2. Deterministic aggregation: results are keyed by case index, never
//      by completion order. The facade guarantees fn(i) runs exactly once
//      per index; callers emit index-ordered output so identical seeds
//      yield byte-identical reports at any job count.
//   3. Exceptions never escape a worker: a throwing task is captured into
//      a Status (and for ParallelFor/ParallelMap, attributed to its index;
//      the first failure by index wins).
//
// Scheduling: each worker owns a deque; it pushes and pops its own work
// LIFO at the back, and steals FIFO from the front of sibling deques when
// its own is empty. Tasks submitted from outside the pool are distributed
// round-robin; tasks submitted from a worker (nested submission) go to the
// submitting worker's own deque. A ParallelFor issued from inside a worker
// runs inline (serially) instead of spawning a nested pool, so recursive
// fan-outs cannot multiply threads.
#ifndef RBDA_BASE_TASK_POOL_H_
#define RBDA_BASE_TASK_POOL_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "base/status.h"

namespace rbda {

/// Hook run by every pool worker when it quiesces (runs out of work or
/// exits) and by ParallelFor on the calling thread after a sweep. The obs
/// library installs FlushThreadMetricCells here so per-thread counter
/// cells are folded into the shared registry whenever a pool goes idle.
using ThreadQuiesceHook = void (*)();
void SetThreadQuiesceHook(ThreadQuiesceHook hook);
ThreadQuiesceHook GetThreadQuiesceHook();

/// Hooks for carrying an opaque per-thread context token across task
/// submission: `capture` is called on the submitting thread at Submit();
/// `swap` installs a token on the worker around the task (returning the
/// worker's previous token, which is restored afterwards). The obs
/// library installs the active-trace-span context here so spans emitted
/// by pool workers nest under the span that submitted the work. Both
/// hooks must be set together (or both null to disable).
using TaskContextCapture = uint64_t (*)();
using TaskContextSwap = uint64_t (*)(uint64_t token);
void SetTaskContextHooks(TaskContextCapture capture, TaskContextSwap swap);

class TaskPool {
 public:
  /// Spawns `num_threads` workers (at least one).
  explicit TaskPool(size_t num_threads);

  /// Waits for every submitted task, then joins the workers.
  ~TaskPool();

  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  /// Enqueues `task`. Safe from any thread, including pool workers
  /// (nested submission: the task lands on the submitting worker's own
  /// deque and is popped LIFO, so nested work completes before the worker
  /// goes back to stealing).
  void Submit(std::function<void()> task);

  /// Blocks until every task submitted so far (including tasks those
  /// tasks submitted) has finished.
  void Wait();

  /// First exception captured from a task, as a Status; OK if none.
  /// Stable once set (later failures don't overwrite it).
  Status status() const;

  size_t num_threads() const { return workers_.size(); }

  /// Total successful steals across workers (stats for tests/metrics).
  uint64_t steals() const;

  /// True iff the calling thread is a worker of any TaskPool.
  static bool OnWorkerThread();

 private:
  struct Worker {
    std::mutex mu;
    std::deque<std::function<void()>> tasks;
  };

  void WorkerLoop(size_t index);
  bool TryPopOwn(size_t index, std::function<void()>* task);
  bool TrySteal(size_t thief, std::function<void()>* task);
  void RunTask(std::function<void()> task);

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;

  mutable std::mutex mu_;          // guards cv_ sleeps, stop_, error_
  std::condition_variable cv_;     // wakes idle workers
  std::condition_variable idle_cv_;  // wakes Wait()
  bool stop_ = false;
  std::optional<Status> error_;

  std::atomic<size_t> pending_{0};     // submitted but not finished
  std::atomic<size_t> next_worker_{0};  // round-robin external submission
  std::atomic<uint64_t> steals_{0};
};

/// Hardware concurrency, at least 1.
size_t HardwareJobs();

/// Resolves a job count: `requested` if nonzero; else the RBDA_JOBS
/// environment variable if set to a positive integer; else 1 (serial).
/// Drivers pass their --jobs flag (0 = unset) through this.
size_t ResolveJobs(size_t requested);

/// Runs fn(i) for every i in [0, n). With jobs <= 1 (or n <= 1, or when
/// already on a pool worker) the loop runs inline in index order on the
/// calling thread. Otherwise the indexes are distributed over a
/// work-stealing pool of `jobs` workers; fn must be safe to call
/// concurrently on distinct indexes. Every index runs regardless of
/// failures; the returned Status is the first non-OK result by *index*
/// (exceptions are captured into Status the same way), so the outcome is
/// identical at any job count.
Status ParallelFor(size_t n, size_t jobs,
                   const std::function<Status(size_t)>& fn);

/// ParallelFor that collects fn(i) into a vector indexed by i. On error,
/// returns the first non-OK status by index (the vector is discarded).
template <typename T>
StatusOr<std::vector<T>> ParallelMap(
    size_t n, size_t jobs, const std::function<StatusOr<T>(size_t)>& fn) {
  std::vector<std::optional<T>> slots(n);
  Status status = ParallelFor(n, jobs, [&](size_t i) -> Status {
    StatusOr<T> out = fn(i);
    if (!out.ok()) return out.status();
    slots[i].emplace(std::move(out).value());
    return Status::Ok();
  });
  if (!status.ok()) return status;
  std::vector<T> results;
  results.reserve(n);
  for (std::optional<T>& slot : slots) {
    if (!slot.has_value()) {
      return Status::Internal("ParallelMap: missing result slot");
    }
    results.push_back(std::move(*slot));
  }
  return results;
}

}  // namespace rbda

#endif  // RBDA_BASE_TASK_POOL_H_
