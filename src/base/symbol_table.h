// String interning: maps names to dense 32-bit ids and back.
//
// Relations, constants, and variables all carry interned names; the dense
// ids make facts and substitutions cheap to hash and compare.
#ifndef RBDA_BASE_SYMBOL_TABLE_H_
#define RBDA_BASE_SYMBOL_TABLE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "base/logging.h"

namespace rbda {

using SymbolId = uint32_t;

/// Bidirectional name <-> dense id map. Not thread-safe; each reasoning
/// context owns its own table.
class SymbolTable {
 public:
  /// Returns the id for `name`, interning it on first use.
  SymbolId Intern(std::string_view name);

  /// Returns the id for `name` if already interned.
  bool Lookup(std::string_view name, SymbolId* id) const;

  /// Returns the name for an id minted by this table.
  const std::string& NameOf(SymbolId id) const {
    RBDA_DCHECK(id < names_.size());
    return names_[id];
  }

  size_t size() const { return names_.size(); }

 private:
  std::unordered_map<std::string, SymbolId> ids_;
  std::vector<std::string> names_;
};

}  // namespace rbda

#endif  // RBDA_BASE_SYMBOL_TABLE_H_
