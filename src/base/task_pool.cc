#include "base/task_pool.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <exception>
#include <string>

namespace rbda {

namespace {

std::atomic<ThreadQuiesceHook> g_quiesce_hook{nullptr};
std::atomic<TaskContextCapture> g_context_capture{nullptr};
std::atomic<TaskContextSwap> g_context_swap{nullptr};

// Set while a thread is executing inside TaskPool::WorkerLoop, so nested
// ParallelFor calls degrade to the inline serial path instead of spawning
// a pool per level, and nested Submit lands on the worker's own deque.
thread_local bool t_on_worker = false;
thread_local TaskPool* t_pool = nullptr;
thread_local size_t t_pool_index = 0;

void RunQuiesceHook() {
  ThreadQuiesceHook hook = g_quiesce_hook.load(std::memory_order_acquire);
  if (hook != nullptr) hook();
}

}  // namespace

void SetThreadQuiesceHook(ThreadQuiesceHook hook) {
  g_quiesce_hook.store(hook, std::memory_order_release);
}

ThreadQuiesceHook GetThreadQuiesceHook() {
  return g_quiesce_hook.load(std::memory_order_acquire);
}

void SetTaskContextHooks(TaskContextCapture capture, TaskContextSwap swap) {
  g_context_capture.store(capture, std::memory_order_release);
  g_context_swap.store(swap, std::memory_order_release);
}

bool TaskPool::OnWorkerThread() { return t_on_worker; }

TaskPool::TaskPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

TaskPool::~TaskPool() {
  Wait();
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void TaskPool::Submit(std::function<void()> task) {
  // Carry the submitter's context token (e.g. the active trace span) to
  // the worker that runs the task, restoring the worker's own afterwards.
  TaskContextCapture capture =
      g_context_capture.load(std::memory_order_acquire);
  TaskContextSwap swap = g_context_swap.load(std::memory_order_acquire);
  if (capture != nullptr && swap != nullptr) {
    uint64_t token = capture();
    task = [inner = std::move(task), token, swap]() {
      struct Restore {
        TaskContextSwap swap;
        uint64_t prev;
        ~Restore() { swap(prev); }  // restore even if the task throws
      } restore{swap, swap(token)};
      inner();
    };
  }
  pending_.fetch_add(1, std::memory_order_acq_rel);
  // Nested submission from a worker goes to that worker's own deque;
  // external submission is distributed round-robin.
  size_t target = t_pool == this
                      ? t_pool_index
                      : next_worker_.fetch_add(1, std::memory_order_relaxed) %
                            workers_.size();
  {
    std::lock_guard<std::mutex> lock(workers_[target]->mu);
    workers_[target]->tasks.push_back(std::move(task));
  }
  cv_.notify_one();
}

bool TaskPool::TryPopOwn(size_t index, std::function<void()>* task) {
  Worker& w = *workers_[index];
  std::lock_guard<std::mutex> lock(w.mu);
  if (w.tasks.empty()) return false;
  *task = std::move(w.tasks.back());
  w.tasks.pop_back();
  return true;
}

bool TaskPool::TrySteal(size_t thief, std::function<void()>* task) {
  size_t n = workers_.size();
  for (size_t k = 1; k < n; ++k) {
    Worker& victim = *workers_[(thief + k) % n];
    std::lock_guard<std::mutex> lock(victim.mu);
    if (victim.tasks.empty()) continue;
    *task = std::move(victim.tasks.front());
    victim.tasks.pop_front();
    steals_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  return false;
}

void TaskPool::RunTask(std::function<void()> task) {
  try {
    task();
  } catch (const std::exception& e) {
    std::lock_guard<std::mutex> lock(mu_);
    if (!error_.has_value()) {
      error_ = Status::Internal(std::string("task threw: ") + e.what());
    }
  } catch (...) {
    std::lock_guard<std::mutex> lock(mu_);
    if (!error_.has_value()) {
      error_ = Status::Internal("task threw a non-std::exception");
    }
  }
  if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    // Take the lock before notifying so the wakeup cannot slip between
    // Wait()'s predicate check and its sleep.
    std::lock_guard<std::mutex> lock(mu_);
    idle_cv_.notify_all();
  }
}

void TaskPool::WorkerLoop(size_t index) {
  t_on_worker = true;
  t_pool = this;
  t_pool_index = index;
  std::function<void()> task;
  for (;;) {
    if (TryPopOwn(index, &task) || TrySteal(index, &task)) {
      RunTask(std::move(task));
      task = nullptr;
      continue;
    }
    // Out of work: fold this thread's metric cells into the shared
    // registry before going idle, so a quiesced pool leaves nothing
    // buffered, then sleep until new work or shutdown.
    RunQuiesceHook();
    std::unique_lock<std::mutex> lock(mu_);
    if (stop_) break;
    cv_.wait_for(lock, std::chrono::milliseconds(1));
    if (stop_) break;
  }
  t_pool = nullptr;
  t_on_worker = false;
  RunQuiesceHook();
}

void TaskPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] {
    return pending_.load(std::memory_order_acquire) == 0;
  });
}

Status TaskPool::status() const {
  std::lock_guard<std::mutex> lock(mu_);
  return error_.value_or(Status::Ok());
}

uint64_t TaskPool::steals() const {
  return steals_.load(std::memory_order_relaxed);
}

size_t HardwareJobs() {
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<size_t>(hw);
}

size_t ResolveJobs(size_t requested) {
  if (requested != 0) return requested;
  const char* env = std::getenv("RBDA_JOBS");
  if (env != nullptr && *env != '\0') {
    char* end = nullptr;
    long v = std::strtol(env, &end, 10);
    if (end != nullptr && *end == '\0' && v > 0) {
      return static_cast<size_t>(v);
    }
  }
  return 1;
}

Status ParallelFor(size_t n, size_t jobs,
                   const std::function<Status(size_t)>& fn) {
  if (n == 0) return Status::Ok();
  Status first_error;
  if (jobs <= 1 || n == 1 || TaskPool::OnWorkerThread()) {
    // The serial path: the plain loop the parallel drivers replaced, in
    // index order on the calling thread. Every index still runs so the
    // set of side effects matches the parallel path.
    for (size_t i = 0; i < n; ++i) {
      Status s;
      try {
        s = fn(i);
      } catch (const std::exception& e) {
        s = Status::Internal(std::string("task threw: ") + e.what());
      } catch (...) {
        s = Status::Internal("task threw a non-std::exception");
      }
      if (!s.ok() && first_error.ok()) first_error = s;
    }
    RunQuiesceHook();
    return first_error;
  }

  TaskPool pool(std::min(jobs, n));
  std::vector<Status> statuses(n);
  for (size_t i = 0; i < n; ++i) {
    pool.Submit([&, i] { statuses[i] = fn(i); });
  }
  pool.Wait();
  RunQuiesceHook();
  // Exceptions were captured into the pool's status; attribute them ahead
  // of per-index failures only if no indexed failure precedes... they have
  // no index, so report the first indexed failure if any, else the pool's.
  for (const Status& s : statuses) {
    if (!s.ok()) return s;
  }
  return pool.status();
}

}  // namespace rbda
