// Deterministic pseudo-random number generator (splitmix64).
//
// Benchmarks and property tests need reproducible randomness independent of
// the standard library's unspecified distributions; this generator is tiny,
// fast, and stable across platforms.
#ifndef RBDA_BASE_RNG_H_
#define RBDA_BASE_RNG_H_

#include <cstdint>

namespace rbda {

class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}

  /// Next 64 random bits.
  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform value in [0, bound). `bound` must be positive.
  uint64_t Below(uint64_t bound) { return Next() % bound; }

  /// Uniform value in [lo, hi] inclusive.
  int64_t Range(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Below(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Bernoulli draw with probability num/den.
  bool Chance(uint64_t num, uint64_t den) { return Below(den) < num; }

 private:
  uint64_t state_;
};

}  // namespace rbda

#endif  // RBDA_BASE_RNG_H_
