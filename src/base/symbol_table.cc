#include "base/symbol_table.h"

namespace rbda {

SymbolId SymbolTable::Intern(std::string_view name) {
  auto it = ids_.find(std::string(name));
  if (it != ids_.end()) return it->second;
  SymbolId id = static_cast<SymbolId>(names_.size());
  names_.emplace_back(name);
  ids_.emplace(names_.back(), id);
  return id;
}

bool SymbolTable::Lookup(std::string_view name, SymbolId* id) const {
  auto it = ids_.find(std::string(name));
  if (it == ids_.end()) return false;
  *id = it->second;
  return true;
}

}  // namespace rbda
