// Error handling for the RBDA library.
//
// Public APIs that can fail for reasons other than programming errors
// return rbda::Status, or rbda::StatusOr<T> when they also produce a value.
// The library does not throw exceptions across its public boundary.
#ifndef RBDA_BASE_STATUS_H_
#define RBDA_BASE_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "base/logging.h"

namespace rbda {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kFailedPrecondition,
  kResourceExhausted,  // a search budget (chase depth, fact count) ran out
  kUnimplemented,
  kInternal,
  kUnavailable,        // transient service failure; retrying may succeed
  kDeadlineExceeded,   // a wall/virtual-time deadline expired
};

/// Result of an operation: either OK or an error code with a message.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable rendering, e.g. "INVALID_ARGUMENT: bad arity".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status.
template <typename T>
class StatusOr {
 public:
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    RBDA_DCHECK(!status_.ok());
  }
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    RBDA_CHECK(ok());
    return *value_;
  }
  T& value() & {
    RBDA_CHECK(ok());
    return *value_;
  }
  T&& value() && {
    RBDA_CHECK(ok());
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates a non-OK Status from an expression to the caller.
#define RBDA_RETURN_IF_ERROR(expr)            \
  do {                                        \
    ::rbda::Status _rbda_status = (expr);     \
    if (!_rbda_status.ok()) return _rbda_status; \
  } while (0)

}  // namespace rbda

#endif  // RBDA_BASE_STATUS_H_
