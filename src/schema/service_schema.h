// Service schemas (paper §2, "Query and access model").
//
// A schema bundles a relational signature, integrity constraints, and a set
// of access methods. A method exposes one relation: callers supply values
// for the input positions and receive matching tuples, possibly limited by
// a result bound (return at most k matching tuples; if at most k exist,
// return all of them) or a result lower bound (only the completeness half).
#ifndef RBDA_SCHEMA_SERVICE_SCHEMA_H_
#define RBDA_SCHEMA_SERVICE_SCHEMA_H_

#include <string>
#include <vector>

#include "base/status.h"
#include "constraints/constraint_set.h"

namespace rbda {

enum class BoundKind {
  kNone,             // every matching tuple is returned
  kResultBound,      // at most k returned; complete when ≤ k matches exist
  kResultLowerBound, // complete when ≤ k matches exist; no upper limit
};

struct AccessMethod {
  std::string name;
  RelationId relation = 0;
  std::vector<uint32_t> input_positions;  // sorted, deduplicated
  BoundKind bound_kind = BoundKind::kNone;
  uint32_t bound = 0;  // k, meaningful unless bound_kind == kNone

  bool IsInputFree() const { return input_positions.empty(); }
  bool HasBound() const { return bound_kind != BoundKind::kNone; }

  /// A Boolean method has every position as an input position (accessing it
  /// just tests membership; bounds are irrelevant).
  bool IsBoolean(const Universe& universe) const {
    return input_positions.size() == universe.Arity(relation);
  }

  /// Positions of the relation that are not inputs.
  std::vector<uint32_t> OutputPositions(const Universe& universe) const;

  std::string ToString(const Universe& universe) const;
};

/// A relational signature + integrity constraints + access methods.
/// The schema references (does not own) a Universe; schemas derived by the
/// §4/§6 transformations share the original schema's Universe so relation
/// ids and terms stay comparable across the pipeline.
class ServiceSchema {
 public:
  explicit ServiceSchema(Universe* universe) : universe_(universe) {}

  Universe& universe() const { return *universe_; }
  Universe* mutable_universe() { return universe_; }

  /// Declares a relation (interning it in the Universe) as part of this
  /// schema's signature.
  StatusOr<RelationId> AddRelation(std::string_view name, uint32_t arity);

  /// Adopts an already-interned relation into this schema's signature.
  void AdoptRelation(RelationId relation);

  const std::vector<RelationId>& relations() const { return relations_; }
  bool HasRelation(RelationId relation) const;

  ConstraintSet& constraints() { return constraints_; }
  const ConstraintSet& constraints() const { return constraints_; }

  Status AddMethod(AccessMethod method);
  const std::vector<AccessMethod>& methods() const { return methods_; }
  std::vector<AccessMethod>& mutable_methods() { return methods_; }
  const AccessMethod* FindMethod(std::string_view name) const;

  /// True if some method carries a result bound or result lower bound.
  bool HasResultBoundedMethods() const;

  /// Structural sanity checks (arities, positions, duplicate names).
  Status Validate() const;

  std::string ToString() const;

 private:
  Universe* universe_;
  std::vector<RelationId> relations_;
  ConstraintSet constraints_;
  std::vector<AccessMethod> methods_;
};

}  // namespace rbda

#endif  // RBDA_SCHEMA_SERVICE_SCHEMA_H_
