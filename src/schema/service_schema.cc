#include "schema/service_schema.h"

#include <algorithm>

#include "base/str_util.h"

namespace rbda {

std::vector<uint32_t> AccessMethod::OutputPositions(
    const Universe& universe) const {
  std::vector<uint32_t> out;
  for (uint32_t p = 0; p < universe.Arity(relation); ++p) {
    if (!std::binary_search(input_positions.begin(), input_positions.end(),
                            p)) {
      out.push_back(p);
    }
  }
  return out;
}

std::string AccessMethod::ToString(const Universe& universe) const {
  std::string out = "method " + name + " on " +
                    universe.RelationName(relation) + " inputs(";
  for (size_t i = 0; i < input_positions.size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(input_positions[i]);
  }
  out += ")";
  if (bound_kind == BoundKind::kResultBound) {
    out += " limit " + std::to_string(bound);
  } else if (bound_kind == BoundKind::kResultLowerBound) {
    out += " lower-limit " + std::to_string(bound);
  }
  return out;
}

StatusOr<RelationId> ServiceSchema::AddRelation(std::string_view name,
                                                uint32_t arity) {
  StatusOr<RelationId> id = universe_->AddRelation(name, arity);
  if (!id.ok()) return id;
  AdoptRelation(*id);
  return id;
}

void ServiceSchema::AdoptRelation(RelationId relation) {
  if (!HasRelation(relation)) relations_.push_back(relation);
}

bool ServiceSchema::HasRelation(RelationId relation) const {
  return std::find(relations_.begin(), relations_.end(), relation) !=
         relations_.end();
}

Status ServiceSchema::AddMethod(AccessMethod method) {
  std::sort(method.input_positions.begin(), method.input_positions.end());
  method.input_positions.erase(
      std::unique(method.input_positions.begin(),
                  method.input_positions.end()),
      method.input_positions.end());
  if (!HasRelation(method.relation)) {
    return Status::InvalidArgument("method '" + method.name +
                                   "' targets a relation outside the schema");
  }
  uint32_t arity = universe_->Arity(method.relation);
  for (uint32_t p : method.input_positions) {
    if (p >= arity) {
      return Status::InvalidArgument("method '" + method.name +
                                     "' has input position out of range");
    }
  }
  if (FindMethod(method.name) != nullptr) {
    return Status::InvalidArgument("duplicate method name '" + method.name +
                                   "'");
  }
  if (method.HasBound() && method.bound == 0) {
    return Status::InvalidArgument("method '" + method.name +
                                   "' has a zero result bound");
  }
  methods_.push_back(std::move(method));
  return Status::Ok();
}

const AccessMethod* ServiceSchema::FindMethod(std::string_view name) const {
  for (const AccessMethod& m : methods_) {
    if (m.name == name) return &m;
  }
  return nullptr;
}

bool ServiceSchema::HasResultBoundedMethods() const {
  for (const AccessMethod& m : methods_) {
    if (m.HasBound()) return true;
  }
  return false;
}

Status ServiceSchema::Validate() const {
  for (const Tgd& tgd : constraints_.tgds) {
    for (const Atom& a : tgd.body()) {
      if (!HasRelation(a.relation)) {
        return Status::InvalidArgument("constraint uses unknown relation");
      }
      if (a.args.size() != universe_->Arity(a.relation)) {
        return Status::InvalidArgument("constraint atom arity mismatch");
      }
    }
    for (const Atom& a : tgd.head()) {
      if (!HasRelation(a.relation)) {
        return Status::InvalidArgument("constraint uses unknown relation");
      }
      if (a.args.size() != universe_->Arity(a.relation)) {
        return Status::InvalidArgument("constraint atom arity mismatch");
      }
    }
  }
  for (const Fd& fd : constraints_.fds) {
    uint32_t arity = universe_->Arity(fd.relation);
    if (fd.determined >= arity) {
      return Status::InvalidArgument("FD determined position out of range");
    }
    for (uint32_t p : fd.determiners) {
      if (p >= arity) {
        return Status::InvalidArgument("FD determiner position out of range");
      }
    }
  }
  return Status::Ok();
}

std::string ServiceSchema::ToString() const {
  std::string out;
  for (RelationId r : relations_) {
    std::vector<std::string> cols;
    for (uint32_t p = 0; p < universe_->Arity(r); ++p) {
      cols.push_back("p" + std::to_string(p));
    }
    out += "relation " + universe_->RelationName(r) + "(" + Join(cols, ", ") +
           ")\n";
  }
  for (const AccessMethod& m : methods_) {
    out += m.ToString(*universe_) + "\n";
  }
  out += constraints_.ToString(*universe_);
  return out;
}

}  // namespace rbda
