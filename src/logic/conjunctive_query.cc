#include "logic/conjunctive_query.h"

#include <algorithm>

#include "base/str_util.h"

namespace rbda {

TermSet ConjunctiveQuery::Variables() const {
  TermSet vars;
  for (const Atom& a : atoms_) {
    for (const Term& t : a.args) {
      if (t.IsVariable()) vars.insert(t);
    }
  }
  for (const Term& t : free_variables_) {
    if (t.IsVariable()) vars.insert(t);
  }
  return vars;
}

TermSet ConjunctiveQuery::Constants() const {
  TermSet consts;
  for (const Atom& a : atoms_) {
    for (const Term& t : a.args) {
      if (t.IsConstant()) consts.insert(t);
    }
  }
  return consts;
}

Instance ConjunctiveQuery::CanonicalDatabase() const {
  Instance db;
  for (const Atom& a : atoms_) db.AddFact(a);
  return db;
}

bool ConjunctiveQuery::HoldsIn(const Instance& data) const {
  return FindHomomorphism(atoms_, data).has_value();
}

std::vector<std::vector<Term>> ConjunctiveQuery::Evaluate(
    const Instance& data) const {
  std::set<std::vector<Term>> answers;
  ForEachHomomorphism(atoms_, data, nullptr, [&](const Substitution& sub) {
    std::vector<Term> tuple;
    tuple.reserve(free_variables_.size());
    for (Term v : free_variables_) tuple.push_back(ApplyToTerm(sub, v));
    answers.insert(std::move(tuple));
    return true;
  });
  return {answers.begin(), answers.end()};
}

bool ConjunctiveQuery::ContainedIn(const ConjunctiveQuery& other) const {
  RBDA_CHECK(free_variables_.size() == other.free_variables_.size());
  // Q1 ⊆ Q2 iff there is a homomorphism from Q2 to CanonDB(Q1) mapping
  // Q2's free variables onto Q1's (classical Chandra–Merlin criterion).
  Instance canon = CanonicalDatabase();
  Substitution seed;
  for (size_t i = 0; i < free_variables_.size(); ++i) {
    Term from = other.free_variables_[i];
    Term to = free_variables_[i];
    if (from.IsConstant()) {
      if (from != to) return false;
      continue;
    }
    auto it = seed.find(from);
    if (it != seed.end()) {
      if (it->second != to) return false;
    } else {
      seed.emplace(from, to);
    }
  }
  return FindHomomorphism(other.atoms_, canon, &seed).has_value();
}

ConjunctiveQuery ConjunctiveQuery::Minimize() const {
  // Fold the query onto itself: repeatedly look for an endomorphism of the
  // canonical database (fixing free variables) whose image misses an atom,
  // and restrict to the image. The fixpoint is the core.
  ConjunctiveQuery current = *this;
  bool changed = true;
  while (changed && current.atoms_.size() > 1) {
    changed = false;
    for (size_t skip = 0; skip < current.atoms_.size() && !changed; ++skip) {
      std::vector<Atom> reduced;
      for (size_t i = 0; i < current.atoms_.size(); ++i) {
        if (i != skip) reduced.push_back(current.atoms_[i]);
      }
      Instance target;
      for (const Atom& a : reduced) target.AddFact(a);
      Substitution seed;
      for (Term v : current.free_variables_) {
        if (v.IsVariable()) seed.emplace(v, v);
      }
      if (FindHomomorphism(current.atoms_, target, &seed).has_value()) {
        current.atoms_ = std::move(reduced);
        changed = true;
      }
    }
  }
  return current;
}

ConjunctiveQuery ConjunctiveQuery::Substitute(const Substitution& sub) const {
  std::vector<Term> frees;
  frees.reserve(free_variables_.size());
  for (Term v : free_variables_) frees.push_back(ApplyToTerm(sub, v));
  return ConjunctiveQuery(ApplyToAtoms(sub, atoms_), std::move(frees));
}

std::string ConjunctiveQuery::ToString(const Universe& universe) const {
  std::vector<std::string> frees;
  for (Term v : free_variables_) frees.push_back(universe.TermName(v));
  std::vector<std::string> body;
  for (const Atom& a : atoms_) body.push_back(FactToString(a, universe));
  return "Q(" + Join(frees, ", ") + ") :- " + Join(body, ", ");
}

bool UnionQuery::HoldsIn(const Instance& data) const {
  for (const ConjunctiveQuery& cq : disjuncts_) {
    if (cq.HoldsIn(data)) return true;
  }
  return false;
}

std::vector<std::vector<Term>> UnionQuery::Evaluate(
    const Instance& data) const {
  std::set<std::vector<Term>> answers;
  for (const ConjunctiveQuery& cq : disjuncts_) {
    for (auto& tuple : cq.Evaluate(data)) answers.insert(tuple);
  }
  return {answers.begin(), answers.end()};
}

}  // namespace rbda
