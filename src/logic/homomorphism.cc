#include "logic/homomorphism.h"

#include <algorithm>

namespace rbda {

Term ApplyToTerm(const Substitution& sub, Term t) {
  auto it = sub.find(t);
  return it == sub.end() ? t : it->second;
}

Atom ApplyToAtom(const Substitution& sub, const Atom& atom) {
  Atom out = atom;
  for (Term& t : out.args) t = ApplyToTerm(sub, t);
  return out;
}

std::vector<Atom> ApplyToAtoms(const Substitution& sub,
                               const std::vector<Atom>& atoms) {
  std::vector<Atom> out;
  out.reserve(atoms.size());
  for (const Atom& a : atoms) out.push_back(ApplyToAtom(sub, a));
  return out;
}

namespace {

// Half-open range of fact indexes (into FactsOf(relation)) an atom may
// match. The default admits every fact; semi-naive pivot partitioning
// narrows ranges per atom.
struct AtomRange {
  uint32_t lo = 0;
  uint32_t hi = UINT32_MAX;
  bool Contains(uint32_t i) const { return i >= lo && i < hi; }
};

// Backtracking join over the atoms. The atom order is chosen dynamically:
// at each level we pick the remaining atom with the most bound arguments,
// which keeps intermediate candidate sets small.
class Searcher {
 public:
  Searcher(const std::vector<Atom>& atoms, const Instance& target,
           std::function<bool(const Substitution&)> callback,
           const std::vector<AtomRange>* ranges = nullptr)
      : atoms_(atoms), target_(target), callback_(std::move(callback)),
        ranges_(ranges) {}

  // Returns false if enumeration was aborted by the callback.
  bool Run(Substitution* sub) {
    used_.assign(atoms_.size(), false);
    return Recurse(sub, atoms_.size());
  }

  size_t count() const { return count_; }

 private:
  // A term is "bound" if it is a constant or already mapped by `sub`.
  static bool Bound(const Substitution& sub, Term t) {
    return t.IsConstant() || sub.count(t) > 0;
  }

  size_t PickNextAtom(const Substitution& sub) const {
    size_t best = atoms_.size();
    int best_score = -1;
    for (size_t i = 0; i < atoms_.size(); ++i) {
      if (used_[i]) continue;
      int score = 0;
      for (const Term& t : atoms_[i].args) {
        if (Bound(sub, t)) ++score;
      }
      if (score > best_score) {
        best_score = score;
        best = i;
      }
    }
    return best;
  }

  bool Recurse(Substitution* sub, size_t remaining) {
    if (remaining == 0) {
      ++count_;
      return callback_(*sub);
    }
    size_t idx = PickNextAtom(*sub);
    const Atom& atom = atoms_[idx];
    used_[idx] = true;

    // Pick the candidate list: the smallest posting list among bound
    // positions, else all facts of the relation.
    const std::vector<Fact>& facts = target_.FactsOf(atom.relation);
    const std::vector<uint32_t>* postings = nullptr;
    for (uint32_t p = 0; p < atom.args.size(); ++p) {
      if (!Bound(*sub, atom.args[p])) continue;
      Term t = ApplyToTerm(*sub, atom.args[p]);
      const std::vector<uint32_t>& list = target_.FactsWith(atom.relation, p, t);
      if (postings == nullptr || list.size() < postings->size()) {
        postings = &list;
      }
    }

    bool keep_going = true;
    auto try_fact = [&](const Fact& fact) -> bool {
      // Attempt to unify atom with fact, extending sub.
      std::vector<Term> newly_bound;
      bool match = true;
      for (size_t p = 0; p < atom.args.size(); ++p) {
        Term a = atom.args[p];
        Term v = fact.args[p];
        if (a.IsConstant()) {
          if (a != v) {
            match = false;
            break;
          }
          continue;
        }
        auto it = sub->find(a);
        if (it != sub->end()) {
          if (it->second != v) {
            match = false;
            break;
          }
        } else {
          sub->emplace(a, v);
          newly_bound.push_back(a);
        }
      }
      if (match) {
        if (!Recurse(sub, remaining - 1)) {
          for (Term t : newly_bound) sub->erase(t);
          return false;
        }
      }
      for (Term t : newly_bound) sub->erase(t);
      return true;
    };

    AtomRange range;  // default: all facts
    if (ranges_ != nullptr) range = (*ranges_)[idx];
    if (postings != nullptr) {
      for (uint32_t i : *postings) {
        if (!range.Contains(i)) continue;
        if (!try_fact(facts[i])) {
          keep_going = false;
          break;
        }
      }
    } else {
      uint32_t end = std::min<uint32_t>(static_cast<uint32_t>(facts.size()),
                                        range.hi);
      for (uint32_t i = range.lo; i < end; ++i) {
        if (!try_fact(facts[i])) {
          keep_going = false;
          break;
        }
      }
    }
    used_[idx] = false;
    return keep_going;
  }

  const std::vector<Atom>& atoms_;
  const Instance& target_;
  std::function<bool(const Substitution&)> callback_;
  const std::vector<AtomRange>* ranges_;
  std::vector<bool> used_;
  size_t count_ = 0;
};

}  // namespace

std::optional<Substitution> FindHomomorphism(const std::vector<Atom>& atoms,
                                             const Instance& target,
                                             const Substitution* seed) {
  std::optional<Substitution> found;
  auto callback = [&](const Substitution& sub) {
    found = sub;
    return false;  // stop at first
  };
  Substitution sub = seed ? *seed : Substitution();
  Searcher searcher(atoms, target, callback);
  searcher.Run(&sub);
  return found;
}

size_t ForEachHomomorphism(
    const std::vector<Atom>& atoms, const Instance& target,
    const Substitution* seed,
    const std::function<bool(const Substitution&)>& callback) {
  Substitution sub = seed ? *seed : Substitution();
  Searcher searcher(atoms, target, callback);
  searcher.Run(&sub);
  return searcher.count();
}

size_t ForEachHomomorphismDelta(
    const std::vector<Atom>& atoms, const Instance& target,
    const Substitution* seed, const Instance::DeltaMark& delta,
    const std::function<bool(const Substitution&)>& callback) {
  size_t total = 0;
  // Pivot partitioning: for pivot p, atom p matches inside the delta,
  // atoms before p match strictly before it, atoms after p match anywhere.
  // The union over pivots covers every homomorphism touching the delta,
  // and the partitions are disjoint, so nothing is visited twice.
  std::vector<AtomRange> ranges(atoms.size());
  for (size_t p = 0; p < atoms.size(); ++p) {
    uint32_t begin = target.DeltaBegin(delta, atoms[p].relation);
    if (begin >= target.FactsOf(atoms[p].relation).size()) {
      continue;  // no delta facts for this pivot's relation
    }
    for (size_t j = 0; j < atoms.size(); ++j) {
      if (j < p) {
        ranges[j] = AtomRange{0, target.DeltaBegin(delta, atoms[j].relation)};
      } else if (j == p) {
        ranges[j] = AtomRange{begin, UINT32_MAX};
      } else {
        ranges[j] = AtomRange{};
      }
    }
    Substitution sub = seed ? *seed : Substitution();
    Searcher searcher(atoms, target, callback, &ranges);
    bool keep_going = searcher.Run(&sub);
    total += searcher.count();
    if (!keep_going) break;  // callback asked to stop
  }
  return total;
}

std::optional<Substitution> FindHomomorphismDelta(
    const std::vector<Atom>& atoms, const Instance& target,
    const Substitution* seed, const Instance::DeltaMark& delta) {
  std::optional<Substitution> found;
  ForEachHomomorphismDelta(atoms, target, seed, delta,
                           [&](const Substitution& sub) {
                             found = sub;
                             return false;  // stop at first
                           });
  return found;
}

bool InstanceHomomorphismExists(const Instance& source,
                                const Instance& target) {
  std::vector<Atom> atoms;
  atoms.reserve(source.NumFacts());
  source.ForEachFact([&](const Fact& f) { atoms.push_back(f); });
  return FindHomomorphism(atoms, target).has_value();
}

}  // namespace rbda
