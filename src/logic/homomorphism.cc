#include "logic/homomorphism.h"

#include <algorithm>

namespace rbda {

Term ApplyToTerm(const Substitution& sub, Term t) {
  auto it = sub.find(t);
  return it == sub.end() ? t : it->second;
}

Atom ApplyToAtom(const Substitution& sub, const Atom& atom) {
  Atom out = atom;
  for (Term& t : out.args) t = ApplyToTerm(sub, t);
  return out;
}

std::vector<Atom> ApplyToAtoms(const Substitution& sub,
                               const std::vector<Atom>& atoms) {
  std::vector<Atom> out;
  out.reserve(atoms.size());
  for (const Atom& a : atoms) out.push_back(ApplyToAtom(sub, a));
  return out;
}

namespace {

// Half-open range of fact indexes (into FactsOf(relation)) an atom may
// match. The default admits every fact; semi-naive pivot partitioning
// narrows ranges per atom.
struct AtomRange {
  uint32_t lo = 0;
  uint32_t hi = UINT32_MAX;
  bool Contains(uint32_t i) const { return i >= lo && i < hi; }
};

// Backtracking join over the atoms. The atom order is chosen dynamically:
// at each level we pick the remaining atom with the most bound arguments
// (ties broken by the smallest candidate-set estimate), which keeps
// intermediate candidate sets small. Bound-argument counts are maintained
// incrementally as variables bind/unbind, so atom selection never rescans
// argument lists against the substitution.
class Searcher {
 public:
  Searcher(const std::vector<Atom>& atoms, const Instance& target,
           std::function<bool(const Substitution&)> callback,
           const std::vector<AtomRange>* ranges = nullptr)
      : atoms_(atoms), target_(target), callback_(std::move(callback)),
        ranges_(ranges) {
    for (size_t i = 0; i < atoms_.size(); ++i) {
      for (const Term& t : atoms_[i].args) {
        if (!t.IsConstant()) {
          var_occurrences_[t].push_back(static_cast<uint32_t>(i));
        }
      }
    }
  }

  // Returns false if enumeration was aborted by the callback.
  bool Run(Substitution* sub) {
    used_.assign(atoms_.size(), false);
    bound_score_.assign(atoms_.size(), 0);
    for (size_t i = 0; i < atoms_.size(); ++i) {
      for (const Term& t : atoms_[i].args) {
        if (t.IsConstant() || sub->find(t) != sub->end()) ++bound_score_[i];
      }
    }
    return Recurse(sub, atoms_.size());
  }

  size_t count() const { return count_; }

 private:
  // Smallest posting list among this atom's bound argument positions
  // (nullptr when none is bound); *estimate gets the candidate count
  // either way. One substitution lookup per argument — binding state and
  // image come from the same find.
  const std::vector<uint32_t>* SmallestPostings(const Substitution& sub,
                                                const Atom& atom,
                                                size_t* estimate) const {
    const std::vector<uint32_t>* postings = nullptr;
    for (uint32_t p = 0; p < atom.args.size(); ++p) {
      Term t = atom.args[p];
      if (!t.IsConstant()) {
        auto it = sub.find(t);
        if (it == sub.end()) continue;
        t = it->second;
      }
      const std::vector<uint32_t>& list =
          target_.FactsWith(atom.relation, p, t);
      if (postings == nullptr || list.size() < postings->size()) {
        postings = &list;
      }
    }
    *estimate =
        postings ? postings->size() : target_.FactsOf(atom.relation).size();
    return postings;
  }

  // Picks the unused atom with the most bound arguments, breaking ties on
  // the smaller candidate-set estimate. Returns the chosen atom's posting
  // list through *postings_out so Recurse does not recompute it.
  size_t PickNextAtom(const Substitution& sub,
                      const std::vector<uint32_t>** postings_out) const {
    size_t best = atoms_.size();
    int best_score = -1;
    size_t best_estimate = 0;
    const std::vector<uint32_t>* best_postings = nullptr;
    for (size_t i = 0; i < atoms_.size(); ++i) {
      if (used_[i]) continue;
      int score = bound_score_[i];
      if (score < best_score) continue;
      size_t estimate;
      const std::vector<uint32_t>* postings =
          SmallestPostings(sub, atoms_[i], &estimate);
      if (score > best_score || estimate < best_estimate) {
        best = i;
        best_score = score;
        best_estimate = estimate;
        best_postings = postings;
      }
    }
    *postings_out = best_postings;
    return best;
  }

  void BindVar(Substitution* sub, Term t, Term v,
               std::vector<Term>* newly_bound) {
    sub->emplace(t, v);
    newly_bound->push_back(t);
    for (uint32_t i : var_occurrences_.find(t)->second) ++bound_score_[i];
  }

  void UnbindVars(Substitution* sub, const std::vector<Term>& newly_bound) {
    for (Term t : newly_bound) {
      sub->erase(t);
      for (uint32_t i : var_occurrences_.find(t)->second) --bound_score_[i];
    }
  }

  bool Recurse(Substitution* sub, size_t remaining) {
    if (remaining == 0) {
      ++count_;
      return callback_(*sub);
    }
    const std::vector<uint32_t>* postings = nullptr;
    size_t idx = PickNextAtom(*sub, &postings);
    const Atom& atom = atoms_[idx];
    used_[idx] = true;

    // Packed row view: candidate rows are contiguous arena memory, and a
    // relation's rows all share one arity — an atom of a different arity
    // matches nothing.
    FactRange facts = target_.FactsOf(atom.relation);
    if (!facts.empty() && facts[0].arity() != atom.args.size()) {
      used_[idx] = false;
      return true;
    }

    bool keep_going = true;
    auto try_fact = [&](FactRef fact) -> bool {
      // Attempt to unify atom with fact, extending sub.
      std::vector<Term> newly_bound;
      bool match = true;
      for (size_t p = 0; p < atom.args.size(); ++p) {
        Term a = atom.args[p];
        Term v = fact.arg(static_cast<uint32_t>(p));
        if (a.IsConstant()) {
          if (a != v) {
            match = false;
            break;
          }
          continue;
        }
        auto it = sub->find(a);
        if (it != sub->end()) {
          if (it->second != v) {
            match = false;
            break;
          }
        } else {
          BindVar(sub, a, v, &newly_bound);
        }
      }
      if (match) {
        if (!Recurse(sub, remaining - 1)) {
          UnbindVars(sub, newly_bound);
          return false;
        }
      }
      UnbindVars(sub, newly_bound);
      return true;
    };

    AtomRange range;  // default: all facts
    if (ranges_ != nullptr) range = (*ranges_)[idx];
    if (postings != nullptr) {
      for (uint32_t i : *postings) {
        if (!range.Contains(i)) continue;
        if (!try_fact(facts[i])) {
          keep_going = false;
          break;
        }
      }
    } else {
      uint32_t end = std::min<uint32_t>(static_cast<uint32_t>(facts.size()),
                                        range.hi);
      for (uint32_t i = range.lo; i < end; ++i) {
        if (!try_fact(facts[i])) {
          keep_going = false;
          break;
        }
      }
    }
    used_[idx] = false;
    return keep_going;
  }

  const std::vector<Atom>& atoms_;
  const Instance& target_;
  std::function<bool(const Substitution&)> callback_;
  const std::vector<AtomRange>* ranges_;
  std::vector<bool> used_;
  // Atom indexes containing each non-constant term, one entry per
  // occurrence (feeds the incremental bound scores).
  std::unordered_map<Term, std::vector<uint32_t>, TermHash> var_occurrences_;
  std::vector<int> bound_score_;
  size_t count_ = 0;
};

}  // namespace

std::optional<Substitution> FindHomomorphism(const std::vector<Atom>& atoms,
                                             const Instance& target,
                                             const Substitution* seed) {
  std::optional<Substitution> found;
  auto callback = [&](const Substitution& sub) {
    found = sub;
    return false;  // stop at first
  };
  Substitution sub = seed ? *seed : Substitution();
  Searcher searcher(atoms, target, callback);
  searcher.Run(&sub);
  return found;
}

size_t ForEachHomomorphism(
    const std::vector<Atom>& atoms, const Instance& target,
    const Substitution* seed,
    const std::function<bool(const Substitution&)>& callback) {
  Substitution sub = seed ? *seed : Substitution();
  Searcher searcher(atoms, target, callback);
  searcher.Run(&sub);
  return searcher.count();
}

size_t ForEachHomomorphismDelta(
    const std::vector<Atom>& atoms, const Instance& target,
    const Substitution* seed, const Instance::DeltaMark& delta,
    const std::function<bool(const Substitution&)>& callback) {
  size_t total = 0;
  // Pivot partitioning: for pivot p, atom p matches inside the delta,
  // atoms before p match strictly before it, atoms after p match anywhere.
  // The union over pivots covers every homomorphism touching the delta,
  // and the partitions are disjoint, so nothing is visited twice.
  std::vector<AtomRange> ranges(atoms.size());
  for (size_t p = 0; p < atoms.size(); ++p) {
    uint32_t begin = target.DeltaBegin(delta, atoms[p].relation);
    if (begin >= target.FactsOf(atoms[p].relation).size()) {
      continue;  // no delta facts for this pivot's relation
    }
    for (size_t j = 0; j < atoms.size(); ++j) {
      if (j < p) {
        ranges[j] = AtomRange{0, target.DeltaBegin(delta, atoms[j].relation)};
      } else if (j == p) {
        ranges[j] = AtomRange{begin, UINT32_MAX};
      } else {
        ranges[j] = AtomRange{};
      }
    }
    Substitution sub = seed ? *seed : Substitution();
    Searcher searcher(atoms, target, callback, &ranges);
    bool keep_going = searcher.Run(&sub);
    total += searcher.count();
    if (!keep_going) break;  // callback asked to stop
  }
  return total;
}

std::optional<Substitution> FindHomomorphismDelta(
    const std::vector<Atom>& atoms, const Instance& target,
    const Substitution* seed, const Instance::DeltaMark& delta) {
  std::optional<Substitution> found;
  ForEachHomomorphismDelta(atoms, target, seed, delta,
                           [&](const Substitution& sub) {
                             found = sub;
                             return false;  // stop at first
                           });
  return found;
}

bool InstanceHomomorphismExists(const Instance& source,
                                const Instance& target) {
  std::vector<Atom> atoms;
  atoms.reserve(source.NumFacts());
  source.ForEachFact([&](FactRef f) { atoms.push_back(Fact(f)); });
  return FindHomomorphism(atoms, target).has_value();
}

}  // namespace rbda
