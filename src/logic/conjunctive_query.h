// Conjunctive queries and unions of conjunctive queries (paper §2).
//
// A CQ is an existentially quantified conjunction of relational atoms, with
// an optional tuple of free variables (empty tuple = Boolean CQ). The class
// provides evaluation over instances, the canonical database, plain CQ
// containment, and core minimization — the building blocks the paper's
// reductions rest on.
#ifndef RBDA_LOGIC_CONJUNCTIVE_QUERY_H_
#define RBDA_LOGIC_CONJUNCTIVE_QUERY_H_

#include <set>
#include <string>
#include <vector>

#include "logic/homomorphism.h"

namespace rbda {

class ConjunctiveQuery {
 public:
  ConjunctiveQuery() = default;
  ConjunctiveQuery(std::vector<Atom> atoms, std::vector<Term> free_variables)
      : atoms_(std::move(atoms)), free_variables_(std::move(free_variables)) {}

  static ConjunctiveQuery Boolean(std::vector<Atom> atoms) {
    return ConjunctiveQuery(std::move(atoms), {});
  }

  const std::vector<Atom>& atoms() const { return atoms_; }
  const std::vector<Term>& free_variables() const { return free_variables_; }
  bool IsBoolean() const { return free_variables_.empty(); }

  /// All variables occurring in the query.
  TermSet Variables() const;

  /// All constants occurring in the query.
  TermSet Constants() const;

  /// The canonical database CanonDB(Q): one fact per atom, with variables
  /// kept as (frozen) variable terms.
  Instance CanonicalDatabase() const;

  /// Boolean evaluation: true iff the query has a homomorphism into `data`.
  bool HoldsIn(const Instance& data) const;

  /// Non-Boolean evaluation: the set of answer tuples (images of the free
  /// variables under some homomorphism), sorted and deduplicated.
  std::vector<std::vector<Term>> Evaluate(const Instance& data) const;

  /// Plain CQ containment (no constraints): true iff this ⊆ other, i.e.
  /// every instance satisfying/answering this query also satisfies `other`.
  /// Free variable tuples must have equal length.
  bool ContainedIn(const ConjunctiveQuery& other) const;

  /// Core minimization: returns an equivalent CQ with a minimal set of
  /// atoms (folds redundant atoms via retractions).
  ConjunctiveQuery Minimize() const;

  /// Applies a substitution to all atoms and free variables.
  ConjunctiveQuery Substitute(const Substitution& sub) const;

  /// Renders e.g. "Q(n) :- Prof(i, n, c10000)".
  std::string ToString(const Universe& universe) const;

  bool operator==(const ConjunctiveQuery& o) const {
    return atoms_ == o.atoms_ && free_variables_ == o.free_variables_;
  }

 private:
  std::vector<Atom> atoms_;
  std::vector<Term> free_variables_;
};

/// A union of conjunctive queries with a shared free-variable arity.
class UnionQuery {
 public:
  UnionQuery() = default;
  explicit UnionQuery(std::vector<ConjunctiveQuery> disjuncts)
      : disjuncts_(std::move(disjuncts)) {}

  const std::vector<ConjunctiveQuery>& disjuncts() const { return disjuncts_; }

  bool HoldsIn(const Instance& data) const;
  std::vector<std::vector<Term>> Evaluate(const Instance& data) const;

 private:
  std::vector<ConjunctiveQuery> disjuncts_;
};

}  // namespace rbda

#endif  // RBDA_LOGIC_CONJUNCTIVE_QUERY_H_
