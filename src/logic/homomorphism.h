// Homomorphism search: the workhorse behind query evaluation, chase trigger
// enumeration, CQ containment, and the universality checks in tests.
//
// A homomorphism maps non-constant terms (variables, labeled nulls) to
// terms, is the identity on constants, and must send every atom of the
// source onto a fact of the target instance. The search is a backtracking
// join: atoms are processed most-bound-first and candidate facts come from
// the target's positional index.
#ifndef RBDA_LOGIC_HOMOMORPHISM_H_
#define RBDA_LOGIC_HOMOMORPHISM_H_

#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "data/instance.h"

namespace rbda {

/// An atom is structurally a fact whose arguments may be variables.
using Atom = Fact;

using Substitution = std::unordered_map<Term, Term, TermHash>;

/// Applies `sub` to `t`: mapped terms are rewritten, others kept.
Term ApplyToTerm(const Substitution& sub, Term t);

/// Applies `sub` to every argument of `atom`.
Atom ApplyToAtom(const Substitution& sub, const Atom& atom);

/// Applies `sub` to every atom.
std::vector<Atom> ApplyToAtoms(const Substitution& sub,
                               const std::vector<Atom>& atoms);

/// Finds one homomorphism from `atoms` into `target` extending `seed`
/// (if given). Returns std::nullopt if none exists.
std::optional<Substitution> FindHomomorphism(
    const std::vector<Atom>& atoms, const Instance& target,
    const Substitution* seed = nullptr);

/// Enumerates homomorphisms from `atoms` into `target` extending `seed`.
/// The callback returns true to continue enumeration, false to stop.
/// Returns the number of homomorphisms visited.
size_t ForEachHomomorphism(
    const std::vector<Atom>& atoms, const Instance& target,
    const Substitution* seed,
    const std::function<bool(const Substitution&)>& callback);

/// Semi-naive (delta-restricted) enumeration: visits exactly those
/// homomorphisms that map at least one atom onto a fact appended after
/// `delta` was taken (requires target.MarkValid(delta)). Implemented by
/// pivot partitioning — pivot atom i maps into the delta, atoms before i
/// map into the pre-delta prefix, atoms after i map anywhere — so each
/// qualifying homomorphism is visited exactly once. Homomorphisms whose
/// atoms all land in pre-delta facts are skipped; a caller that saw the
/// pre-delta instance already enumerated them.
size_t ForEachHomomorphismDelta(
    const std::vector<Atom>& atoms, const Instance& target,
    const Substitution* seed, const Instance::DeltaMark& delta,
    const std::function<bool(const Substitution&)>& callback);

/// Delta-restricted existence check: first homomorphism with at least one
/// atom in the delta, or std::nullopt.
std::optional<Substitution> FindHomomorphismDelta(
    const std::vector<Atom>& atoms, const Instance& target,
    const Substitution* seed, const Instance::DeltaMark& delta);

/// True if there is a homomorphism from instance `source` into `target`
/// (constants fixed, nulls and variables mappable).
bool InstanceHomomorphismExists(const Instance& source,
                                const Instance& target);

}  // namespace rbda

#endif  // RBDA_LOGIC_HOMOMORPHISM_H_
