// A set of integrity constraints (TGDs + FDs) and its syntactic
// classification into the fragments of the paper's Table 1.
#ifndef RBDA_CONSTRAINTS_CONSTRAINT_SET_H_
#define RBDA_CONSTRAINTS_CONSTRAINT_SET_H_

#include <string>
#include <vector>

#include "constraints/fd.h"
#include "constraints/tgd.h"

namespace rbda {

/// Constraint fragments in increasing expressiveness order, mirroring the
/// rows of Table 1.
enum class Fragment {
  kEmpty,                // no constraints
  kFdsOnly,              // functional dependencies only
  kIdsOnly,              // inclusion dependencies only
  kUidsAndFds,           // unary IDs + FDs
  kIdsAndFds,            // IDs + FDs (no general result in the paper)
  kFrontierGuardedTgds,  // FGTGDs (no FDs)
  kGeneralTgds,          // arbitrary TGDs (no FDs)
  kMixed,                // anything else
};

const char* FragmentName(Fragment fragment);

struct ConstraintSet {
  std::vector<Tgd> tgds;
  std::vector<Fd> fds;

  bool Empty() const { return tgds.empty() && fds.empty(); }
  size_t Size() const { return tgds.size() + fds.size(); }

  /// True if every TGD and FD holds in `data`.
  bool SatisfiedBy(const Instance& data) const;

  /// Syntactic classification (most specific fragment that applies).
  Fragment Classify() const;

  /// Maximum width over the IDs (0 if none); meaningful when all TGDs are
  /// IDs.
  size_t MaxIdWidth() const;

  /// Concatenates two constraint sets.
  ConstraintSet UnionWith(const ConstraintSet& other) const;

  std::string ToString(const Universe& universe) const;
};

/// True if the TGD `tgd` has an active trigger in `data` (a body match with
/// no head extension), i.e. the TGD is violated.
bool HasActiveTrigger(const Tgd& tgd, const Instance& data);

}  // namespace rbda

#endif  // RBDA_CONSTRAINTS_CONSTRAINT_SET_H_
