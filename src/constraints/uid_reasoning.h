// Unary inclusion dependencies and their implication problems.
//
// A UID R[i] ⊆ S[j] states that every value at position i of R occurs at
// position j of S. This module provides:
//  * extraction of UIDs from width-1 IDs given as TGDs, and the converse;
//  * implication closure (reflexivity + transitivity, per [24]);
//  * the Cosmadakis–Kanellakis–Vardi *finite closure* of UIDs + FDs used by
//    the paper for finite monotone answerability (§7, Thm 7.4 / Cor 7.3):
//    unrestricted closure plus the cycle-reversal rule on the graph mixing
//    UID edges and implied unary-FD edges.
#ifndef RBDA_CONSTRAINTS_UID_REASONING_H_
#define RBDA_CONSTRAINTS_UID_REASONING_H_

#include <optional>
#include <vector>

#include "constraints/constraint_set.h"

namespace rbda {

struct Uid {
  RelationId from_rel = 0;
  uint32_t from_pos = 0;
  RelationId to_rel = 0;
  uint32_t to_pos = 0;

  bool IsTrivial() const { return from_rel == to_rel && from_pos == to_pos; }

  bool operator==(const Uid& o) const {
    return from_rel == o.from_rel && from_pos == o.from_pos &&
           to_rel == o.to_rel && to_pos == o.to_pos;
  }
  bool operator<(const Uid& o) const {
    if (from_rel != o.from_rel) return from_rel < o.from_rel;
    if (from_pos != o.from_pos) return from_pos < o.from_pos;
    if (to_rel != o.to_rel) return to_rel < o.to_rel;
    return to_pos < o.to_pos;
  }
};

/// Interprets a width-1 ID as a UID; nullopt if `tgd` is not a UID.
std::optional<Uid> UidFromTgd(const Tgd& tgd);

/// Builds the TGD form of a UID (fresh variables from `universe`).
Tgd UidToTgd(const Uid& uid, Universe* universe);

/// Non-trivial UIDs implied by `uids` under reflexivity + transitivity.
std::vector<Uid> UidClosure(const std::vector<Uid>& uids);

/// The finite closure of a set of UIDs and FDs: all UIDs and FDs implied
/// over *finite* instances. `universe` supplies relation arities.
/// Implements the CKV procedure: iterate (a) unrestricted closure of UIDs
/// and FDs, (b) reversal of every UID / unary-FD edge lying on a cycle of
/// the mixed cardinality graph, until fixpoint.
struct UidFdClosure {
  std::vector<Uid> uids;
  std::vector<Fd> fds;  // includes the input FDs
};
UidFdClosure FiniteClosure(const std::vector<Uid>& uids,
                           const std::vector<Fd>& fds,
                           const Universe& universe);

}  // namespace rbda

#endif  // RBDA_CONSTRAINTS_UID_REASONING_H_
