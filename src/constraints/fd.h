// Functional dependencies (paper §2): D -> j on a relation R, asserting
// that any two R-facts agreeing on the positions of D agree on position j.
// Positions are 0-based throughout the library.
#ifndef RBDA_CONSTRAINTS_FD_H_
#define RBDA_CONSTRAINTS_FD_H_

#include <string>
#include <vector>

#include "data/instance.h"
#include "data/universe.h"

namespace rbda {

struct Fd {
  RelationId relation = 0;
  std::vector<uint32_t> determiners;  // sorted, deduplicated
  uint32_t determined = 0;

  Fd() = default;
  Fd(RelationId r, std::vector<uint32_t> lhs, uint32_t rhs);

  /// A unary FD has a single determining position.
  bool IsUnary() const { return determiners.size() == 1; }

  /// Trivial FDs (j ∈ D) hold vacuously.
  bool IsTrivial() const;

  /// Checks whether `data` satisfies this FD.
  bool SatisfiedBy(const Instance& data) const;

  std::string ToString(const Universe& universe) const;

  bool operator==(const Fd& o) const {
    return relation == o.relation && determiners == o.determiners &&
           determined == o.determined;
  }
  bool operator<(const Fd& o) const {
    if (relation != o.relation) return relation < o.relation;
    if (determiners != o.determiners) return determiners < o.determiners;
    return determined < o.determined;
  }
};

}  // namespace rbda

#endif  // RBDA_CONSTRAINTS_FD_H_
