#include "constraints/fd_reasoning.h"

#include <algorithm>
#include <set>

namespace rbda {

std::vector<uint32_t> AttributeClosure(const std::vector<Fd>& fds,
                                       RelationId relation,
                                       const std::vector<uint32_t>& start) {
  std::set<uint32_t> closure(start.begin(), start.end());
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Fd& fd : fds) {
      if (fd.relation != relation) continue;
      if (closure.count(fd.determined)) continue;
      bool applies = true;
      for (uint32_t p : fd.determiners) {
        if (!closure.count(p)) {
          applies = false;
          break;
        }
      }
      if (applies) {
        closure.insert(fd.determined);
        changed = true;
      }
    }
  }
  return {closure.begin(), closure.end()};
}

bool ImpliesFd(const std::vector<Fd>& fds, const Fd& fd) {
  std::vector<uint32_t> closure =
      AttributeClosure(fds, fd.relation, fd.determiners);
  return std::binary_search(closure.begin(), closure.end(), fd.determined);
}

std::vector<Fd> ImpliedUnaryFds(const std::vector<Fd>& fds,
                                RelationId relation, uint32_t arity) {
  std::vector<Fd> out;
  for (uint32_t i = 0; i < arity; ++i) {
    std::vector<uint32_t> closure = AttributeClosure(fds, relation, {i});
    for (uint32_t j : closure) {
      if (j != i) out.emplace_back(relation, std::vector<uint32_t>{i}, j);
    }
  }
  return out;
}

}  // namespace rbda
