#include "constraints/constraint_set.h"

namespace rbda {

const char* FragmentName(Fragment fragment) {
  switch (fragment) {
    case Fragment::kEmpty:
      return "empty";
    case Fragment::kFdsOnly:
      return "FDs";
    case Fragment::kIdsOnly:
      return "IDs";
    case Fragment::kUidsAndFds:
      return "UIDs+FDs";
    case Fragment::kIdsAndFds:
      return "IDs+FDs";
    case Fragment::kFrontierGuardedTgds:
      return "frontier-guarded TGDs";
    case Fragment::kGeneralTgds:
      return "TGDs";
    case Fragment::kMixed:
      return "mixed";
  }
  return "unknown";
}

bool HasActiveTrigger(const Tgd& tgd, const Instance& data) {
  bool found_active = false;
  ForEachHomomorphism(
      tgd.body(), data, nullptr, [&](const Substitution& sub) {
        // Restrict the trigger to exported variables and try to extend it
        // to the head.
        Substitution seed;
        for (Term x : tgd.ExportedVariables()) {
          seed.emplace(x, ApplyToTerm(sub, x));
        }
        if (!FindHomomorphism(tgd.head(), data, &seed).has_value()) {
          found_active = true;
          return false;  // stop: a violation exists
        }
        return true;
      });
  return found_active;
}

bool ConstraintSet::SatisfiedBy(const Instance& data) const {
  for (const Tgd& tgd : tgds) {
    if (HasActiveTrigger(tgd, data)) return false;
  }
  for (const Fd& fd : fds) {
    if (!fd.SatisfiedBy(data)) return false;
  }
  return true;
}

Fragment ConstraintSet::Classify() const {
  if (Empty()) return Fragment::kEmpty;
  if (tgds.empty()) return Fragment::kFdsOnly;

  bool all_ids = true;
  bool all_uids = true;
  bool all_fg = true;
  for (const Tgd& tgd : tgds) {
    if (!tgd.IsId()) all_ids = false;
    if (!tgd.IsUid()) all_uids = false;
    if (!tgd.IsFrontierGuarded()) all_fg = false;
  }
  if (fds.empty()) {
    if (all_ids) return Fragment::kIdsOnly;
    if (all_fg) return Fragment::kFrontierGuardedTgds;
    return Fragment::kGeneralTgds;
  }
  if (all_uids) return Fragment::kUidsAndFds;
  if (all_ids) return Fragment::kIdsAndFds;
  return Fragment::kMixed;
}

size_t ConstraintSet::MaxIdWidth() const {
  size_t w = 0;
  for (const Tgd& tgd : tgds) {
    if (tgd.IsId()) w = std::max(w, tgd.Width());
  }
  return w;
}

ConstraintSet ConstraintSet::UnionWith(const ConstraintSet& other) const {
  ConstraintSet out = *this;
  out.tgds.insert(out.tgds.end(), other.tgds.begin(), other.tgds.end());
  out.fds.insert(out.fds.end(), other.fds.begin(), other.fds.end());
  return out;
}

std::string ConstraintSet::ToString(const Universe& universe) const {
  std::string out;
  for (const Tgd& tgd : tgds) {
    out += tgd.ToString(universe);
    out += "\n";
  }
  for (const Fd& fd : fds) {
    out += fd.ToString(universe);
    out += "\n";
  }
  return out;
}

}  // namespace rbda
