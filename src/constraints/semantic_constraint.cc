#include "constraints/semantic_constraint.h"

namespace rbda {

bool AnswerCountConstraint::SatisfiedBy(const Instance& data) const {
  size_t count = query_.Evaluate(data).size();
  if (count < min_count_) return false;
  if (max_count_.has_value() && count > *max_count_) return false;
  return true;
}

std::string AnswerCountConstraint::Describe(const Universe& universe) const {
  std::string out = "|" + query_.ToString(universe) + "| in [" +
                    std::to_string(min_count_) + ", ";
  out += max_count_.has_value() ? std::to_string(*max_count_) : "inf";
  return out + "]";
}

bool ConditionalConstraint::SatisfiedBy(const Instance& data) const {
  if (!premise_.HoldsIn(data)) return true;
  return inner_->SatisfiedBy(data);
}

std::string ConditionalConstraint::Describe(const Universe& universe) const {
  return "if (" + premise_.ToString(universe) + ") then " +
         inner_->Describe(universe);
}

bool AllSatisfied(const std::vector<SemanticConstraintPtr>& constraints,
                  const Instance& data) {
  for (const SemanticConstraintPtr& c : constraints) {
    if (!c->SatisfiedBy(data)) return false;
  }
  return true;
}

std::vector<SemanticConstraintPtr> Example81Constraints(Universe* universe,
                                                        RelationId p,
                                                        RelationId u,
                                                        size_t p_size,
                                                        size_t overlap) {
  Term x = universe->Variable("x81");
  ConjunctiveQuery p_members({Atom(p, {x})}, {x});
  ConjunctiveQuery both_members({Atom(p, {x}), Atom(u, {x})}, {x});
  ConjunctiveQuery premise =
      ConjunctiveQuery::Boolean({Atom(p, {x}), Atom(u, {x})});

  std::vector<SemanticConstraintPtr> out;
  out.push_back(std::make_shared<AnswerCountConstraint>(
      std::move(p_members), p_size, p_size));
  out.push_back(std::make_shared<ConditionalConstraint>(
      std::move(premise),
      std::make_shared<AnswerCountConstraint>(std::move(both_members),
                                              overlap, std::nullopt)));
  return out;
}

}  // namespace rbda
