#include "constraints/fd.h"

#include <algorithm>

namespace rbda {

Fd::Fd(RelationId r, std::vector<uint32_t> lhs, uint32_t rhs)
    : relation(r), determiners(std::move(lhs)), determined(rhs) {
  std::sort(determiners.begin(), determiners.end());
  determiners.erase(std::unique(determiners.begin(), determiners.end()),
                    determiners.end());
}

bool Fd::IsTrivial() const {
  return std::binary_search(determiners.begin(), determiners.end(),
                            determined);
}

bool Fd::SatisfiedBy(const Instance& data) const {
  FactRange facts = data.FactsOf(relation);
  for (size_t i = 0; i < facts.size(); ++i) {
    for (size_t j = i + 1; j < facts.size(); ++j) {
      bool agree = true;
      for (uint32_t p : determiners) {
        if (facts[i].arg(p) != facts[j].arg(p)) {
          agree = false;
          break;
        }
      }
      if (agree && facts[i].arg(determined) != facts[j].arg(determined)) {
        return false;
      }
    }
  }
  return true;
}

std::string Fd::ToString(const Universe& universe) const {
  std::string out = universe.RelationName(relation) + ": {";
  for (size_t i = 0; i < determiners.size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(determiners[i]);
  }
  out += "} -> " + std::to_string(determined);
  return out;
}

}  // namespace rbda
