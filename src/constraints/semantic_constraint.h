// Semantic (FO-style) constraints beyond TGDs/FDs — the §8 frontier.
//
// Example 8.1 uses counting constraints ("P has exactly 7 tuples; if U
// meets P then 4 of P's tuples are in U") that no TGD/FD can express, and
// shows choice simplification fails there. Our reasoning engines do not
// decide answerability for these; the runtime uses them as *checkable*
// model constraints: instance generators filter against them and the
// oracle validates plans only on satisfying instances.
#ifndef RBDA_CONSTRAINTS_SEMANTIC_CONSTRAINT_H_
#define RBDA_CONSTRAINTS_SEMANTIC_CONSTRAINT_H_

#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "logic/conjunctive_query.h"

namespace rbda {

class SemanticConstraint {
 public:
  virtual ~SemanticConstraint() = default;
  virtual bool SatisfiedBy(const Instance& data) const = 0;
  virtual std::string Describe(const Universe& universe) const = 0;
};

using SemanticConstraintPtr = std::shared_ptr<const SemanticConstraint>;

/// The number of distinct answers to `query` lies in [min, max].
class AnswerCountConstraint : public SemanticConstraint {
 public:
  AnswerCountConstraint(ConjunctiveQuery query, size_t min_count,
                        std::optional<size_t> max_count)
      : query_(std::move(query)),
        min_count_(min_count),
        max_count_(max_count) {}

  bool SatisfiedBy(const Instance& data) const override;
  std::string Describe(const Universe& universe) const override;

 private:
  ConjunctiveQuery query_;
  size_t min_count_;
  std::optional<size_t> max_count_;
};

/// If the (Boolean) premise holds, the inner constraint must too.
class ConditionalConstraint : public SemanticConstraint {
 public:
  ConditionalConstraint(ConjunctiveQuery premise, SemanticConstraintPtr inner)
      : premise_(std::move(premise)), inner_(std::move(inner)) {}

  bool SatisfiedBy(const Instance& data) const override;
  std::string Describe(const Universe& universe) const override;

 private:
  ConjunctiveQuery premise_;
  SemanticConstraintPtr inner_;
};

/// Checks a whole set.
bool AllSatisfied(const std::vector<SemanticConstraintPtr>& constraints,
                  const Instance& data);

/// The Example 8.1 constraints over unary relations P and U:
///   |P| = `p_size`; if ∃x P(x) ∧ U(x) then |{x : P(x) ∧ U(x)}| ≥
///   `overlap`.  (Paper values: p_size = 7, overlap = 4.)
std::vector<SemanticConstraintPtr> Example81Constraints(Universe* universe,
                                                        RelationId p,
                                                        RelationId u,
                                                        size_t p_size = 7,
                                                        size_t overlap = 4);

}  // namespace rbda

#endif  // RBDA_CONSTRAINTS_SEMANTIC_CONSTRAINT_H_
