// Tuple-generating dependencies (paper §2).
//
// A TGD is ∀x (body(x) → ∃y head(x,y)) with body and head conjunctions of
// relational atoms. Exported variables are body variables that occur in the
// head; head-only variables are existentially quantified. The class also
// provides the syntactic classification used throughout the paper: full,
// guarded, frontier-guarded, inclusion dependency (ID), unary ID, linear,
// and the width of an ID.
#ifndef RBDA_CONSTRAINTS_TGD_H_
#define RBDA_CONSTRAINTS_TGD_H_

#include <string>
#include <vector>

#include "logic/homomorphism.h"

namespace rbda {

class Tgd {
 public:
  Tgd() = default;
  Tgd(std::vector<Atom> body, std::vector<Atom> head)
      : body_(std::move(body)), head_(std::move(head)) {}

  const std::vector<Atom>& body() const { return body_; }
  const std::vector<Atom>& head() const { return head_; }

  /// Variables occurring in the body.
  TermSet BodyVariables() const;
  /// Variables occurring in the head.
  TermSet HeadVariables() const;
  /// Body variables that occur in the head.
  std::vector<Term> ExportedVariables() const;
  /// Head variables not in the body (existentially quantified).
  std::vector<Term> ExistentialVariables() const;

  /// No existential variables in the head.
  bool IsFull() const;
  /// Some body atom contains every body variable.
  bool IsGuarded() const;
  /// Some body atom contains every exported variable.
  bool IsFrontierGuarded() const;
  /// Single body atom (repetitions allowed).
  bool IsLinear() const;
  /// Single body atom, single head atom, no repeated variables on either
  /// side, and no constants: an inclusion dependency.
  bool IsId() const;
  /// Number of exported variables (meaningful for IDs; defined generally).
  size_t Width() const { return ExportedVariables().size(); }
  /// An ID of width 1.
  bool IsUid() const { return IsId() && Width() == 1; }

  /// Renames all variables via `sub` (e.g. freshening apart).
  Tgd Substitute(const Substitution& sub) const;

  std::string ToString(const Universe& universe) const;

  bool operator==(const Tgd& o) const {
    return body_ == o.body_ && head_ == o.head_;
  }

 private:
  std::vector<Atom> body_;
  std::vector<Atom> head_;
};

}  // namespace rbda

#endif  // RBDA_CONSTRAINTS_TGD_H_
