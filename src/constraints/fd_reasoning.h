// FD implication reasoning: attribute-set closure and the paper's
// DetBy(R, P) operator (§4, "FD simplification"), i.e. the set of positions
// of R functionally determined by P under a set of FDs.
#ifndef RBDA_CONSTRAINTS_FD_REASONING_H_
#define RBDA_CONSTRAINTS_FD_REASONING_H_

#include <vector>

#include "constraints/fd.h"

namespace rbda {

/// Closure of the position set `start` of relation `relation` under `fds`
/// (Armstrong closure). The result is sorted and contains `start`.
std::vector<uint32_t> AttributeClosure(const std::vector<Fd>& fds,
                                       RelationId relation,
                                       const std::vector<uint32_t>& start);

/// DetBy(R, P): positions of `relation` determined by `positions` (paper
/// notation; equal to the attribute closure).
inline std::vector<uint32_t> DetBy(const std::vector<Fd>& fds,
                                   RelationId relation,
                                   const std::vector<uint32_t>& positions) {
  return AttributeClosure(fds, relation, positions);
}

/// True if `fds` implies `fd`.
bool ImpliesFd(const std::vector<Fd>& fds, const Fd& fd);

/// All non-trivial *unary* FDs i -> j on `relation` implied by `fds`, for
/// the given arity. Used by the finite-closure cycle rule.
std::vector<Fd> ImpliedUnaryFds(const std::vector<Fd>& fds,
                                RelationId relation, uint32_t arity);

}  // namespace rbda

#endif  // RBDA_CONSTRAINTS_FD_REASONING_H_
