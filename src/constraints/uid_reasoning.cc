#include "constraints/uid_reasoning.h"

#include <algorithm>
#include <map>
#include <set>

#include "constraints/fd_reasoning.h"

namespace rbda {

std::optional<Uid> UidFromTgd(const Tgd& tgd) {
  if (!tgd.IsUid()) return std::nullopt;
  const Atom& body = tgd.body()[0];
  const Atom& head = tgd.head()[0];
  Term exported = tgd.ExportedVariables()[0];
  Uid uid;
  uid.from_rel = body.relation;
  uid.to_rel = head.relation;
  bool found_body = false;
  bool found_head = false;
  for (uint32_t p = 0; p < body.args.size(); ++p) {
    if (body.args[p] == exported) {
      uid.from_pos = p;
      found_body = true;
    }
  }
  for (uint32_t p = 0; p < head.args.size(); ++p) {
    if (head.args[p] == exported) {
      uid.to_pos = p;
      found_head = true;
    }
  }
  RBDA_CHECK(found_body && found_head);
  return uid;
}

Tgd UidToTgd(const Uid& uid, Universe* universe) {
  std::vector<Term> body_args, head_args;
  Term exported = universe->FreshVariable();
  for (uint32_t p = 0; p < universe->Arity(uid.from_rel); ++p) {
    body_args.push_back(p == uid.from_pos ? exported
                                          : universe->FreshVariable());
  }
  for (uint32_t p = 0; p < universe->Arity(uid.to_rel); ++p) {
    head_args.push_back(p == uid.to_pos ? exported
                                        : universe->FreshVariable());
  }
  return Tgd({Atom(uid.from_rel, std::move(body_args))},
             {Atom(uid.to_rel, std::move(head_args))});
}

std::vector<Uid> UidClosure(const std::vector<Uid>& uids) {
  std::set<Uid> closure(uids.begin(), uids.end());
  bool changed = true;
  while (changed) {
    changed = false;
    std::vector<Uid> current(closure.begin(), closure.end());
    for (const Uid& a : current) {
      for (const Uid& b : current) {
        if (a.to_rel == b.from_rel && a.to_pos == b.from_pos) {
          Uid composed{a.from_rel, a.from_pos, b.to_rel, b.to_pos};
          if (!composed.IsTrivial() && closure.insert(composed).second) {
            changed = true;
          }
        }
      }
    }
  }
  std::vector<Uid> out;
  for (const Uid& u : closure) {
    if (!u.IsTrivial()) out.push_back(u);
  }
  return out;
}

namespace {

// Graph node: one relation position.
using Node = uint64_t;
Node MakeNode(RelationId rel, uint32_t pos) {
  return (static_cast<uint64_t>(rel) << 32) | pos;
}

// Computes, for each node, which nodes it can reach (small graphs; DFS per
// node is plenty).
std::map<Node, std::set<Node>> Reachability(
    const std::map<Node, std::set<Node>>& edges) {
  std::map<Node, std::set<Node>> reach;
  for (const auto& [start, _] : edges) {
    std::vector<Node> stack{start};
    std::set<Node>& seen = reach[start];
    while (!stack.empty()) {
      Node n = stack.back();
      stack.pop_back();
      auto it = edges.find(n);
      if (it == edges.end()) continue;
      for (Node next : it->second) {
        if (seen.insert(next).second) stack.push_back(next);
      }
    }
  }
  return reach;
}

bool OnCycle(const std::map<Node, std::set<Node>>& reach, Node from, Node to) {
  // The edge from->to lies on a cycle iff `to` can reach `from`.
  auto it = reach.find(to);
  return it != reach.end() && it->second.count(from) > 0;
}

}  // namespace

UidFdClosure FiniteClosure(const std::vector<Uid>& uids,
                           const std::vector<Fd>& fds,
                           const Universe& universe) {
  std::set<Uid> uid_set(uids.begin(), uids.end());
  std::set<Fd> fd_set(fds.begin(), fds.end());

  // Relations that actually appear, for implied-unary-FD enumeration.
  std::set<RelationId> relations;
  for (const Uid& u : uids) {
    relations.insert(u.from_rel);
    relations.insert(u.to_rel);
  }
  for (const Fd& fd : fds) relations.insert(fd.relation);

  bool changed = true;
  while (changed) {
    changed = false;

    // (a) Unrestricted closure of the UIDs.
    std::vector<Uid> closed =
        UidClosure(std::vector<Uid>(uid_set.begin(), uid_set.end()));
    for (const Uid& u : closed) {
      if (uid_set.insert(u).second) changed = true;
    }

    // (b) Build the cardinality graph. A directed edge u -> v means
    // "in finite instances, #distinct values at u  <=  #distinct values
    // at v":
    //   * UID R[i] ⊆ S[j] contributes (R,i) -> (S,j);
    //   * an implied unary FD  i -> j on S (a function from i-values to
    //     j-values, so at most as many j-values) contributes (S,j) -> (S,i).
    std::vector<Fd> fd_vec(fd_set.begin(), fd_set.end());
    std::map<Node, std::set<Node>> edges;
    struct UidEdge {
      Node from, to;
      Uid uid;
    };
    struct FdEdge {
      Node from, to;  // from = (S,j) determined, to = (S,i) determiner
      Fd fd;          // the unary FD i -> j
    };
    std::vector<UidEdge> uid_edges;
    std::vector<FdEdge> fd_edges;
    for (const Uid& u : uid_set) {
      Node a = MakeNode(u.from_rel, u.from_pos);
      Node b = MakeNode(u.to_rel, u.to_pos);
      edges[a].insert(b);
      edges[b];  // ensure node exists
      uid_edges.push_back({a, b, u});
    }
    for (RelationId rel : relations) {
      for (const Fd& ufd : ImpliedUnaryFds(fd_vec, rel, universe.Arity(rel))) {
        Node det = MakeNode(rel, ufd.determined);
        Node src = MakeNode(rel, ufd.determiners[0]);
        edges[det].insert(src);
        edges[src];
        fd_edges.push_back({det, src, ufd});
      }
    }

    // (c) Reverse every edge on a cycle.
    std::map<Node, std::set<Node>> reach = Reachability(edges);
    for (const UidEdge& e : uid_edges) {
      if (OnCycle(reach, e.from, e.to)) {
        Uid rev{e.uid.to_rel, e.uid.to_pos, e.uid.from_rel, e.uid.from_pos};
        if (!rev.IsTrivial() && uid_set.insert(rev).second) changed = true;
      }
    }
    for (const FdEdge& e : fd_edges) {
      if (OnCycle(reach, e.from, e.to)) {
        // The unary FD i -> j reverses to j -> i.
        Fd rev(e.fd.relation, {e.fd.determined}, e.fd.determiners[0]);
        if (!rev.IsTrivial() && fd_set.insert(rev).second) changed = true;
      }
    }
  }

  UidFdClosure out;
  out.uids.assign(uid_set.begin(), uid_set.end());
  out.fds.assign(fd_set.begin(), fd_set.end());
  return out;
}

}  // namespace rbda
