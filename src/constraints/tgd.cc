#include "constraints/tgd.h"

#include <algorithm>

#include "base/str_util.h"

namespace rbda {

namespace {

TermSet VariablesOf(const std::vector<Atom>& atoms) {
  TermSet vars;
  for (const Atom& a : atoms) {
    for (const Term& t : a.args) {
      if (t.IsVariable()) vars.insert(t);
    }
  }
  return vars;
}

bool HasConstants(const std::vector<Atom>& atoms) {
  for (const Atom& a : atoms) {
    for (const Term& t : a.args) {
      if (t.IsConstant()) return true;
    }
  }
  return false;
}

bool HasRepeatedVariable(const Atom& atom) {
  for (size_t i = 0; i < atom.args.size(); ++i) {
    for (size_t j = i + 1; j < atom.args.size(); ++j) {
      if (atom.args[i] == atom.args[j]) return true;
    }
  }
  return false;
}

}  // namespace

TermSet Tgd::BodyVariables() const { return VariablesOf(body_); }
TermSet Tgd::HeadVariables() const { return VariablesOf(head_); }

std::vector<Term> Tgd::ExportedVariables() const {
  TermSet body_vars = BodyVariables();
  TermSet head_vars = HeadVariables();
  std::vector<Term> out;
  for (const Term& t : body_vars) {
    if (head_vars.count(t)) out.push_back(t);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<Term> Tgd::ExistentialVariables() const {
  TermSet body_vars = BodyVariables();
  TermSet head_vars = HeadVariables();
  std::vector<Term> out;
  for (const Term& t : head_vars) {
    if (!body_vars.count(t)) out.push_back(t);
  }
  std::sort(out.begin(), out.end());
  return out;
}

bool Tgd::IsFull() const { return ExistentialVariables().empty(); }

bool Tgd::IsGuarded() const {
  TermSet body_vars = BodyVariables();
  for (const Atom& a : body_) {
    TermSet atom_vars;
    for (const Term& t : a.args) {
      if (t.IsVariable()) atom_vars.insert(t);
    }
    if (atom_vars.size() == body_vars.size()) return true;
  }
  return body_vars.empty();
}

bool Tgd::IsFrontierGuarded() const {
  std::vector<Term> exported = ExportedVariables();
  for (const Atom& a : body_) {
    TermSet atom_vars;
    for (const Term& t : a.args) {
      if (t.IsVariable()) atom_vars.insert(t);
    }
    bool covers = true;
    for (const Term& x : exported) {
      if (!atom_vars.count(x)) {
        covers = false;
        break;
      }
    }
    if (covers) return true;
  }
  return exported.empty();
}

bool Tgd::IsLinear() const { return body_.size() == 1; }

bool Tgd::IsId() const {
  if (body_.size() != 1 || head_.size() != 1) return false;
  if (HasConstants(body_) || HasConstants(head_)) return false;
  if (HasRepeatedVariable(body_[0]) || HasRepeatedVariable(head_[0])) {
    return false;
  }
  return true;
}

Tgd Tgd::Substitute(const Substitution& sub) const {
  return Tgd(ApplyToAtoms(sub, body_), ApplyToAtoms(sub, head_));
}

std::string Tgd::ToString(const Universe& universe) const {
  std::vector<std::string> b, h;
  for (const Atom& a : body_) b.push_back(FactToString(a, universe));
  for (const Atom& a : head_) h.push_back(FactToString(a, universe));
  return Join(b, " & ") + " -> " + Join(h, " & ");
}

}  // namespace rbda
