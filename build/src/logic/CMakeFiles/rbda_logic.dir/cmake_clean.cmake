file(REMOVE_RECURSE
  "CMakeFiles/rbda_logic.dir/conjunctive_query.cc.o"
  "CMakeFiles/rbda_logic.dir/conjunctive_query.cc.o.d"
  "CMakeFiles/rbda_logic.dir/homomorphism.cc.o"
  "CMakeFiles/rbda_logic.dir/homomorphism.cc.o.d"
  "librbda_logic.a"
  "librbda_logic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rbda_logic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
