
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/logic/conjunctive_query.cc" "src/logic/CMakeFiles/rbda_logic.dir/conjunctive_query.cc.o" "gcc" "src/logic/CMakeFiles/rbda_logic.dir/conjunctive_query.cc.o.d"
  "/root/repo/src/logic/homomorphism.cc" "src/logic/CMakeFiles/rbda_logic.dir/homomorphism.cc.o" "gcc" "src/logic/CMakeFiles/rbda_logic.dir/homomorphism.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/data/CMakeFiles/rbda_data.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/rbda_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
