file(REMOVE_RECURSE
  "librbda_logic.a"
)
