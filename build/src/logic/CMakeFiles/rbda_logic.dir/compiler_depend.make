# Empty compiler generated dependencies file for rbda_logic.
# This may be replaced when dependencies are built.
