
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/parser/parser.cc" "src/parser/CMakeFiles/rbda_parser.dir/parser.cc.o" "gcc" "src/parser/CMakeFiles/rbda_parser.dir/parser.cc.o.d"
  "/root/repo/src/parser/serializer.cc" "src/parser/CMakeFiles/rbda_parser.dir/serializer.cc.o" "gcc" "src/parser/CMakeFiles/rbda_parser.dir/serializer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/schema/CMakeFiles/rbda_schema.dir/DependInfo.cmake"
  "/root/repo/build/src/constraints/CMakeFiles/rbda_constraints.dir/DependInfo.cmake"
  "/root/repo/build/src/logic/CMakeFiles/rbda_logic.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/rbda_data.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/rbda_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
