# Empty dependencies file for rbda_parser.
# This may be replaced when dependencies are built.
