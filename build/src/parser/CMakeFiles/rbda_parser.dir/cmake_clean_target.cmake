file(REMOVE_RECURSE
  "librbda_parser.a"
)
