file(REMOVE_RECURSE
  "CMakeFiles/rbda_parser.dir/parser.cc.o"
  "CMakeFiles/rbda_parser.dir/parser.cc.o.d"
  "CMakeFiles/rbda_parser.dir/serializer.cc.o"
  "CMakeFiles/rbda_parser.dir/serializer.cc.o.d"
  "librbda_parser.a"
  "librbda_parser.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rbda_parser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
