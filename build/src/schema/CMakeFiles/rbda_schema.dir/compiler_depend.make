# Empty compiler generated dependencies file for rbda_schema.
# This may be replaced when dependencies are built.
