file(REMOVE_RECURSE
  "librbda_schema.a"
)
