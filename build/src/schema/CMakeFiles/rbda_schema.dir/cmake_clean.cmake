file(REMOVE_RECURSE
  "CMakeFiles/rbda_schema.dir/service_schema.cc.o"
  "CMakeFiles/rbda_schema.dir/service_schema.cc.o.d"
  "librbda_schema.a"
  "librbda_schema.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rbda_schema.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
