# Empty compiler generated dependencies file for rbda_data.
# This may be replaced when dependencies are built.
