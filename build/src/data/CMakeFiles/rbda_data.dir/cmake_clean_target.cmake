file(REMOVE_RECURSE
  "librbda_data.a"
)
