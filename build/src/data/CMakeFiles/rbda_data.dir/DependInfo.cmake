
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/instance.cc" "src/data/CMakeFiles/rbda_data.dir/instance.cc.o" "gcc" "src/data/CMakeFiles/rbda_data.dir/instance.cc.o.d"
  "/root/repo/src/data/term.cc" "src/data/CMakeFiles/rbda_data.dir/term.cc.o" "gcc" "src/data/CMakeFiles/rbda_data.dir/term.cc.o.d"
  "/root/repo/src/data/universe.cc" "src/data/CMakeFiles/rbda_data.dir/universe.cc.o" "gcc" "src/data/CMakeFiles/rbda_data.dir/universe.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/rbda_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
