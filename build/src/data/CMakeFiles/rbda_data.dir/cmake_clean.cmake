file(REMOVE_RECURSE
  "CMakeFiles/rbda_data.dir/instance.cc.o"
  "CMakeFiles/rbda_data.dir/instance.cc.o.d"
  "CMakeFiles/rbda_data.dir/term.cc.o"
  "CMakeFiles/rbda_data.dir/term.cc.o.d"
  "CMakeFiles/rbda_data.dir/universe.cc.o"
  "CMakeFiles/rbda_data.dir/universe.cc.o.d"
  "librbda_data.a"
  "librbda_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rbda_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
