file(REMOVE_RECURSE
  "librbda_base.a"
)
