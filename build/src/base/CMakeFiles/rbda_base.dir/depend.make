# Empty dependencies file for rbda_base.
# This may be replaced when dependencies are built.
