file(REMOVE_RECURSE
  "CMakeFiles/rbda_base.dir/status.cc.o"
  "CMakeFiles/rbda_base.dir/status.cc.o.d"
  "CMakeFiles/rbda_base.dir/str_util.cc.o"
  "CMakeFiles/rbda_base.dir/str_util.cc.o.d"
  "CMakeFiles/rbda_base.dir/symbol_table.cc.o"
  "CMakeFiles/rbda_base.dir/symbol_table.cc.o.d"
  "librbda_base.a"
  "librbda_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rbda_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
