# Empty dependencies file for rbda_runtime.
# This may be replaced when dependencies are built.
