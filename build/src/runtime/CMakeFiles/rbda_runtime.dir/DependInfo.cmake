
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/access_selection.cc" "src/runtime/CMakeFiles/rbda_runtime.dir/access_selection.cc.o" "gcc" "src/runtime/CMakeFiles/rbda_runtime.dir/access_selection.cc.o.d"
  "/root/repo/src/runtime/accessible_part.cc" "src/runtime/CMakeFiles/rbda_runtime.dir/accessible_part.cc.o" "gcc" "src/runtime/CMakeFiles/rbda_runtime.dir/accessible_part.cc.o.d"
  "/root/repo/src/runtime/executor.cc" "src/runtime/CMakeFiles/rbda_runtime.dir/executor.cc.o" "gcc" "src/runtime/CMakeFiles/rbda_runtime.dir/executor.cc.o.d"
  "/root/repo/src/runtime/generators.cc" "src/runtime/CMakeFiles/rbda_runtime.dir/generators.cc.o" "gcc" "src/runtime/CMakeFiles/rbda_runtime.dir/generators.cc.o.d"
  "/root/repo/src/runtime/oracle.cc" "src/runtime/CMakeFiles/rbda_runtime.dir/oracle.cc.o" "gcc" "src/runtime/CMakeFiles/rbda_runtime.dir/oracle.cc.o.d"
  "/root/repo/src/runtime/plan.cc" "src/runtime/CMakeFiles/rbda_runtime.dir/plan.cc.o" "gcc" "src/runtime/CMakeFiles/rbda_runtime.dir/plan.cc.o.d"
  "/root/repo/src/runtime/plan_compile.cc" "src/runtime/CMakeFiles/rbda_runtime.dir/plan_compile.cc.o" "gcc" "src/runtime/CMakeFiles/rbda_runtime.dir/plan_compile.cc.o.d"
  "/root/repo/src/runtime/plan_transform.cc" "src/runtime/CMakeFiles/rbda_runtime.dir/plan_transform.cc.o" "gcc" "src/runtime/CMakeFiles/rbda_runtime.dir/plan_transform.cc.o.d"
  "/root/repo/src/runtime/ra_expr.cc" "src/runtime/CMakeFiles/rbda_runtime.dir/ra_expr.cc.o" "gcc" "src/runtime/CMakeFiles/rbda_runtime.dir/ra_expr.cc.o.d"
  "/root/repo/src/runtime/schema_generators.cc" "src/runtime/CMakeFiles/rbda_runtime.dir/schema_generators.cc.o" "gcc" "src/runtime/CMakeFiles/rbda_runtime.dir/schema_generators.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/schema/CMakeFiles/rbda_schema.dir/DependInfo.cmake"
  "/root/repo/build/src/chase/CMakeFiles/rbda_chase.dir/DependInfo.cmake"
  "/root/repo/build/src/obs/CMakeFiles/rbda_obs.dir/DependInfo.cmake"
  "/root/repo/build/src/constraints/CMakeFiles/rbda_constraints.dir/DependInfo.cmake"
  "/root/repo/build/src/logic/CMakeFiles/rbda_logic.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/rbda_data.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/rbda_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
