file(REMOVE_RECURSE
  "librbda_runtime.a"
)
