# Empty compiler generated dependencies file for rbda_runtime.
# This may be replaced when dependencies are built.
