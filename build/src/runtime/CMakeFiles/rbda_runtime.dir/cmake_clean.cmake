file(REMOVE_RECURSE
  "CMakeFiles/rbda_runtime.dir/access_selection.cc.o"
  "CMakeFiles/rbda_runtime.dir/access_selection.cc.o.d"
  "CMakeFiles/rbda_runtime.dir/accessible_part.cc.o"
  "CMakeFiles/rbda_runtime.dir/accessible_part.cc.o.d"
  "CMakeFiles/rbda_runtime.dir/executor.cc.o"
  "CMakeFiles/rbda_runtime.dir/executor.cc.o.d"
  "CMakeFiles/rbda_runtime.dir/generators.cc.o"
  "CMakeFiles/rbda_runtime.dir/generators.cc.o.d"
  "CMakeFiles/rbda_runtime.dir/oracle.cc.o"
  "CMakeFiles/rbda_runtime.dir/oracle.cc.o.d"
  "CMakeFiles/rbda_runtime.dir/plan.cc.o"
  "CMakeFiles/rbda_runtime.dir/plan.cc.o.d"
  "CMakeFiles/rbda_runtime.dir/plan_compile.cc.o"
  "CMakeFiles/rbda_runtime.dir/plan_compile.cc.o.d"
  "CMakeFiles/rbda_runtime.dir/plan_transform.cc.o"
  "CMakeFiles/rbda_runtime.dir/plan_transform.cc.o.d"
  "CMakeFiles/rbda_runtime.dir/ra_expr.cc.o"
  "CMakeFiles/rbda_runtime.dir/ra_expr.cc.o.d"
  "CMakeFiles/rbda_runtime.dir/schema_generators.cc.o"
  "CMakeFiles/rbda_runtime.dir/schema_generators.cc.o.d"
  "librbda_runtime.a"
  "librbda_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rbda_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
