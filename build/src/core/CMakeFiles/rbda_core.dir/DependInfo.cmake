
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/answerability.cc" "src/core/CMakeFiles/rbda_core.dir/answerability.cc.o" "gcc" "src/core/CMakeFiles/rbda_core.dir/answerability.cc.o.d"
  "/root/repo/src/core/axiom_rb.cc" "src/core/CMakeFiles/rbda_core.dir/axiom_rb.cc.o" "gcc" "src/core/CMakeFiles/rbda_core.dir/axiom_rb.cc.o.d"
  "/root/repo/src/core/blowup.cc" "src/core/CMakeFiles/rbda_core.dir/blowup.cc.o" "gcc" "src/core/CMakeFiles/rbda_core.dir/blowup.cc.o.d"
  "/root/repo/src/core/certificates.cc" "src/core/CMakeFiles/rbda_core.dir/certificates.cc.o" "gcc" "src/core/CMakeFiles/rbda_core.dir/certificates.cc.o.d"
  "/root/repo/src/core/linearization.cc" "src/core/CMakeFiles/rbda_core.dir/linearization.cc.o" "gcc" "src/core/CMakeFiles/rbda_core.dir/linearization.cc.o.d"
  "/root/repo/src/core/plan_synthesis.cc" "src/core/CMakeFiles/rbda_core.dir/plan_synthesis.cc.o" "gcc" "src/core/CMakeFiles/rbda_core.dir/plan_synthesis.cc.o.d"
  "/root/repo/src/core/proof_plans.cc" "src/core/CMakeFiles/rbda_core.dir/proof_plans.cc.o" "gcc" "src/core/CMakeFiles/rbda_core.dir/proof_plans.cc.o.d"
  "/root/repo/src/core/reduction.cc" "src/core/CMakeFiles/rbda_core.dir/reduction.cc.o" "gcc" "src/core/CMakeFiles/rbda_core.dir/reduction.cc.o.d"
  "/root/repo/src/core/rewriting.cc" "src/core/CMakeFiles/rbda_core.dir/rewriting.cc.o" "gcc" "src/core/CMakeFiles/rbda_core.dir/rewriting.cc.o.d"
  "/root/repo/src/core/simplification.cc" "src/core/CMakeFiles/rbda_core.dir/simplification.cc.o" "gcc" "src/core/CMakeFiles/rbda_core.dir/simplification.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/schema/CMakeFiles/rbda_schema.dir/DependInfo.cmake"
  "/root/repo/build/src/chase/CMakeFiles/rbda_chase.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/rbda_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/constraints/CMakeFiles/rbda_constraints.dir/DependInfo.cmake"
  "/root/repo/build/src/logic/CMakeFiles/rbda_logic.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/rbda_data.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/rbda_base.dir/DependInfo.cmake"
  "/root/repo/build/src/obs/CMakeFiles/rbda_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
