# Empty compiler generated dependencies file for rbda_core.
# This may be replaced when dependencies are built.
