file(REMOVE_RECURSE
  "CMakeFiles/rbda_core.dir/answerability.cc.o"
  "CMakeFiles/rbda_core.dir/answerability.cc.o.d"
  "CMakeFiles/rbda_core.dir/axiom_rb.cc.o"
  "CMakeFiles/rbda_core.dir/axiom_rb.cc.o.d"
  "CMakeFiles/rbda_core.dir/blowup.cc.o"
  "CMakeFiles/rbda_core.dir/blowup.cc.o.d"
  "CMakeFiles/rbda_core.dir/certificates.cc.o"
  "CMakeFiles/rbda_core.dir/certificates.cc.o.d"
  "CMakeFiles/rbda_core.dir/linearization.cc.o"
  "CMakeFiles/rbda_core.dir/linearization.cc.o.d"
  "CMakeFiles/rbda_core.dir/plan_synthesis.cc.o"
  "CMakeFiles/rbda_core.dir/plan_synthesis.cc.o.d"
  "CMakeFiles/rbda_core.dir/proof_plans.cc.o"
  "CMakeFiles/rbda_core.dir/proof_plans.cc.o.d"
  "CMakeFiles/rbda_core.dir/reduction.cc.o"
  "CMakeFiles/rbda_core.dir/reduction.cc.o.d"
  "CMakeFiles/rbda_core.dir/rewriting.cc.o"
  "CMakeFiles/rbda_core.dir/rewriting.cc.o.d"
  "CMakeFiles/rbda_core.dir/simplification.cc.o"
  "CMakeFiles/rbda_core.dir/simplification.cc.o.d"
  "librbda_core.a"
  "librbda_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rbda_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
