file(REMOVE_RECURSE
  "librbda_core.a"
)
