file(REMOVE_RECURSE
  "CMakeFiles/rbda_chase.dir/certain_answers.cc.o"
  "CMakeFiles/rbda_chase.dir/certain_answers.cc.o.d"
  "CMakeFiles/rbda_chase.dir/chase.cc.o"
  "CMakeFiles/rbda_chase.dir/chase.cc.o.d"
  "CMakeFiles/rbda_chase.dir/containment.cc.o"
  "CMakeFiles/rbda_chase.dir/containment.cc.o.d"
  "CMakeFiles/rbda_chase.dir/semi_width.cc.o"
  "CMakeFiles/rbda_chase.dir/semi_width.cc.o.d"
  "CMakeFiles/rbda_chase.dir/weak_acyclicity.cc.o"
  "CMakeFiles/rbda_chase.dir/weak_acyclicity.cc.o.d"
  "librbda_chase.a"
  "librbda_chase.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rbda_chase.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
