# Empty compiler generated dependencies file for rbda_chase.
# This may be replaced when dependencies are built.
