
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/chase/certain_answers.cc" "src/chase/CMakeFiles/rbda_chase.dir/certain_answers.cc.o" "gcc" "src/chase/CMakeFiles/rbda_chase.dir/certain_answers.cc.o.d"
  "/root/repo/src/chase/chase.cc" "src/chase/CMakeFiles/rbda_chase.dir/chase.cc.o" "gcc" "src/chase/CMakeFiles/rbda_chase.dir/chase.cc.o.d"
  "/root/repo/src/chase/containment.cc" "src/chase/CMakeFiles/rbda_chase.dir/containment.cc.o" "gcc" "src/chase/CMakeFiles/rbda_chase.dir/containment.cc.o.d"
  "/root/repo/src/chase/semi_width.cc" "src/chase/CMakeFiles/rbda_chase.dir/semi_width.cc.o" "gcc" "src/chase/CMakeFiles/rbda_chase.dir/semi_width.cc.o.d"
  "/root/repo/src/chase/weak_acyclicity.cc" "src/chase/CMakeFiles/rbda_chase.dir/weak_acyclicity.cc.o" "gcc" "src/chase/CMakeFiles/rbda_chase.dir/weak_acyclicity.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/constraints/CMakeFiles/rbda_constraints.dir/DependInfo.cmake"
  "/root/repo/build/src/obs/CMakeFiles/rbda_obs.dir/DependInfo.cmake"
  "/root/repo/build/src/logic/CMakeFiles/rbda_logic.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/rbda_data.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/rbda_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
