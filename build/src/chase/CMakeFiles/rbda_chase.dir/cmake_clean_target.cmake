file(REMOVE_RECURSE
  "librbda_chase.a"
)
