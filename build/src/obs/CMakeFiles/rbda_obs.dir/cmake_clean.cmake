file(REMOVE_RECURSE
  "CMakeFiles/rbda_obs.dir/json.cc.o"
  "CMakeFiles/rbda_obs.dir/json.cc.o.d"
  "CMakeFiles/rbda_obs.dir/metrics.cc.o"
  "CMakeFiles/rbda_obs.dir/metrics.cc.o.d"
  "CMakeFiles/rbda_obs.dir/trace.cc.o"
  "CMakeFiles/rbda_obs.dir/trace.cc.o.d"
  "librbda_obs.a"
  "librbda_obs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rbda_obs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
