file(REMOVE_RECURSE
  "librbda_obs.a"
)
