# Empty dependencies file for rbda_obs.
# This may be replaced when dependencies are built.
