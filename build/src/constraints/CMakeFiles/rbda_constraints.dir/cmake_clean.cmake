file(REMOVE_RECURSE
  "CMakeFiles/rbda_constraints.dir/constraint_set.cc.o"
  "CMakeFiles/rbda_constraints.dir/constraint_set.cc.o.d"
  "CMakeFiles/rbda_constraints.dir/fd.cc.o"
  "CMakeFiles/rbda_constraints.dir/fd.cc.o.d"
  "CMakeFiles/rbda_constraints.dir/fd_reasoning.cc.o"
  "CMakeFiles/rbda_constraints.dir/fd_reasoning.cc.o.d"
  "CMakeFiles/rbda_constraints.dir/semantic_constraint.cc.o"
  "CMakeFiles/rbda_constraints.dir/semantic_constraint.cc.o.d"
  "CMakeFiles/rbda_constraints.dir/tgd.cc.o"
  "CMakeFiles/rbda_constraints.dir/tgd.cc.o.d"
  "CMakeFiles/rbda_constraints.dir/uid_reasoning.cc.o"
  "CMakeFiles/rbda_constraints.dir/uid_reasoning.cc.o.d"
  "librbda_constraints.a"
  "librbda_constraints.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rbda_constraints.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
