file(REMOVE_RECURSE
  "librbda_constraints.a"
)
