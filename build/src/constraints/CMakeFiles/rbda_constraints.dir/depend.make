# Empty dependencies file for rbda_constraints.
# This may be replaced when dependencies are built.
