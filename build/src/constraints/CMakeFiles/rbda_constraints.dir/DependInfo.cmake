
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/constraints/constraint_set.cc" "src/constraints/CMakeFiles/rbda_constraints.dir/constraint_set.cc.o" "gcc" "src/constraints/CMakeFiles/rbda_constraints.dir/constraint_set.cc.o.d"
  "/root/repo/src/constraints/fd.cc" "src/constraints/CMakeFiles/rbda_constraints.dir/fd.cc.o" "gcc" "src/constraints/CMakeFiles/rbda_constraints.dir/fd.cc.o.d"
  "/root/repo/src/constraints/fd_reasoning.cc" "src/constraints/CMakeFiles/rbda_constraints.dir/fd_reasoning.cc.o" "gcc" "src/constraints/CMakeFiles/rbda_constraints.dir/fd_reasoning.cc.o.d"
  "/root/repo/src/constraints/semantic_constraint.cc" "src/constraints/CMakeFiles/rbda_constraints.dir/semantic_constraint.cc.o" "gcc" "src/constraints/CMakeFiles/rbda_constraints.dir/semantic_constraint.cc.o.d"
  "/root/repo/src/constraints/tgd.cc" "src/constraints/CMakeFiles/rbda_constraints.dir/tgd.cc.o" "gcc" "src/constraints/CMakeFiles/rbda_constraints.dir/tgd.cc.o.d"
  "/root/repo/src/constraints/uid_reasoning.cc" "src/constraints/CMakeFiles/rbda_constraints.dir/uid_reasoning.cc.o" "gcc" "src/constraints/CMakeFiles/rbda_constraints.dir/uid_reasoning.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/logic/CMakeFiles/rbda_logic.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/rbda_data.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/rbda_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
