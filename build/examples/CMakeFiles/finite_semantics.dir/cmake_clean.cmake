file(REMOVE_RECURSE
  "CMakeFiles/finite_semantics.dir/finite_semantics.cpp.o"
  "CMakeFiles/finite_semantics.dir/finite_semantics.cpp.o.d"
  "finite_semantics"
  "finite_semantics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/finite_semantics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
