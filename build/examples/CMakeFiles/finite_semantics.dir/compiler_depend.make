# Empty compiler generated dependencies file for finite_semantics.
# This may be replaced when dependencies are built.
