# Empty dependencies file for simplification_tour.
# This may be replaced when dependencies are built.
