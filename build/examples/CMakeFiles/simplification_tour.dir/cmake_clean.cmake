file(REMOVE_RECURSE
  "CMakeFiles/simplification_tour.dir/simplification_tour.cpp.o"
  "CMakeFiles/simplification_tour.dir/simplification_tour.cpp.o.d"
  "simplification_tour"
  "simplification_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simplification_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
