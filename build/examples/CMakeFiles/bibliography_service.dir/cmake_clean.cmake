file(REMOVE_RECURSE
  "CMakeFiles/bibliography_service.dir/bibliography_service.cpp.o"
  "CMakeFiles/bibliography_service.dir/bibliography_service.cpp.o.d"
  "bibliography_service"
  "bibliography_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bibliography_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
