# Empty compiler generated dependencies file for bibliography_service.
# This may be replaced when dependencies are built.
