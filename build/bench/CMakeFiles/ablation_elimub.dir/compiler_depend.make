# Empty compiler generated dependencies file for ablation_elimub.
# This may be replaced when dependencies are built.
