file(REMOVE_RECURSE
  "CMakeFiles/ablation_elimub.dir/ablation_elimub.cpp.o"
  "CMakeFiles/ablation_elimub.dir/ablation_elimub.cpp.o.d"
  "ablation_elimub"
  "ablation_elimub.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_elimub.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
