file(REMOVE_RECURSE
  "CMakeFiles/runtime_plans.dir/runtime_plans.cpp.o"
  "CMakeFiles/runtime_plans.dir/runtime_plans.cpp.o.d"
  "runtime_plans"
  "runtime_plans.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runtime_plans.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
