# Empty dependencies file for runtime_plans.
# This may be replaced when dependencies are built.
