# Empty compiler generated dependencies file for table1_row5_eqfree.
# This may be replaced when dependencies are built.
