file(REMOVE_RECURSE
  "CMakeFiles/table1_row5_eqfree.dir/table1_row5_eqfree.cpp.o"
  "CMakeFiles/table1_row5_eqfree.dir/table1_row5_eqfree.cpp.o.d"
  "table1_row5_eqfree"
  "table1_row5_eqfree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_row5_eqfree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
