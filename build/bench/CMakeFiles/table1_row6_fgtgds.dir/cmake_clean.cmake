file(REMOVE_RECURSE
  "CMakeFiles/table1_row6_fgtgds.dir/table1_row6_fgtgds.cpp.o"
  "CMakeFiles/table1_row6_fgtgds.dir/table1_row6_fgtgds.cpp.o.d"
  "table1_row6_fgtgds"
  "table1_row6_fgtgds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_row6_fgtgds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
