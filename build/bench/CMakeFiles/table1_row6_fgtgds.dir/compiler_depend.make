# Empty compiler generated dependencies file for table1_row6_fgtgds.
# This may be replaced when dependencies are built.
