# Empty compiler generated dependencies file for ablation_naive_vs_simplified.
# This may be replaced when dependencies are built.
