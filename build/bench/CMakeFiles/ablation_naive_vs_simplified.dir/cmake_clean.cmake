file(REMOVE_RECURSE
  "CMakeFiles/ablation_naive_vs_simplified.dir/ablation_naive_vs_simplified.cpp.o"
  "CMakeFiles/ablation_naive_vs_simplified.dir/ablation_naive_vs_simplified.cpp.o.d"
  "ablation_naive_vs_simplified"
  "ablation_naive_vs_simplified.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_naive_vs_simplified.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
