# Empty compiler generated dependencies file for table1_row1_ids.
# This may be replaced when dependencies are built.
