file(REMOVE_RECURSE
  "CMakeFiles/table1_row1_ids.dir/table1_row1_ids.cpp.o"
  "CMakeFiles/table1_row1_ids.dir/table1_row1_ids.cpp.o.d"
  "table1_row1_ids"
  "table1_row1_ids.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_row1_ids.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
