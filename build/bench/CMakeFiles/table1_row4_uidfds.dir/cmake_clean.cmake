file(REMOVE_RECURSE
  "CMakeFiles/table1_row4_uidfds.dir/table1_row4_uidfds.cpp.o"
  "CMakeFiles/table1_row4_uidfds.dir/table1_row4_uidfds.cpp.o.d"
  "table1_row4_uidfds"
  "table1_row4_uidfds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_row4_uidfds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
