# Empty dependencies file for table1_row4_uidfds.
# This may be replaced when dependencies are built.
