# Empty compiler generated dependencies file for table1_row2_bwids.
# This may be replaced when dependencies are built.
