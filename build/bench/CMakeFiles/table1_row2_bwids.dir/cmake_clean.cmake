file(REMOVE_RECURSE
  "CMakeFiles/table1_row2_bwids.dir/table1_row2_bwids.cpp.o"
  "CMakeFiles/table1_row2_bwids.dir/table1_row2_bwids.cpp.o.d"
  "table1_row2_bwids"
  "table1_row2_bwids.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_row2_bwids.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
