file(REMOVE_RECURSE
  "CMakeFiles/ablation_proof_plans.dir/ablation_proof_plans.cpp.o"
  "CMakeFiles/ablation_proof_plans.dir/ablation_proof_plans.cpp.o.d"
  "ablation_proof_plans"
  "ablation_proof_plans.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_proof_plans.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
