# Empty compiler generated dependencies file for table1_row3_fds.
# This may be replaced when dependencies are built.
