file(REMOVE_RECURSE
  "CMakeFiles/table1_row3_fds.dir/table1_row3_fds.cpp.o"
  "CMakeFiles/table1_row3_fds.dir/table1_row3_fds.cpp.o.d"
  "table1_row3_fds"
  "table1_row3_fds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_row3_fds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
