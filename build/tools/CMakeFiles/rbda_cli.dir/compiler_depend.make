# Empty compiler generated dependencies file for rbda_cli.
# This may be replaced when dependencies are built.
