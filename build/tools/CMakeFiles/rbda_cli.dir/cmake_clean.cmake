file(REMOVE_RECURSE
  "CMakeFiles/rbda_cli.dir/rbda_cli.cpp.o"
  "CMakeFiles/rbda_cli.dir/rbda_cli.cpp.o.d"
  "rbda_cli"
  "rbda_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rbda_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
