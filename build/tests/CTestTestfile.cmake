# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/base_test[1]_include.cmake")
include("/root/repo/build/tests/obs_test[1]_include.cmake")
include("/root/repo/build/tests/data_test[1]_include.cmake")
include("/root/repo/build/tests/logic_test[1]_include.cmake")
include("/root/repo/build/tests/constraints_test[1]_include.cmake")
include("/root/repo/build/tests/chase_test[1]_include.cmake")
include("/root/repo/build/tests/chase_property_test[1]_include.cmake")
include("/root/repo/build/tests/certain_answers_test[1]_include.cmake")
include("/root/repo/build/tests/schema_test[1]_include.cmake")
include("/root/repo/build/tests/parser_test[1]_include.cmake")
include("/root/repo/build/tests/serializer_test[1]_include.cmake")
include("/root/repo/build/tests/runtime_test[1]_include.cmake")
include("/root/repo/build/tests/simplification_test[1]_include.cmake")
include("/root/repo/build/tests/reduction_test[1]_include.cmake")
include("/root/repo/build/tests/linearization_test[1]_include.cmake")
include("/root/repo/build/tests/rewriting_test[1]_include.cmake")
include("/root/repo/build/tests/answerability_test[1]_include.cmake")
include("/root/repo/build/tests/plan_synthesis_test[1]_include.cmake")
include("/root/repo/build/tests/proof_plans_test[1]_include.cmake")
include("/root/repo/build/tests/plan_transform_test[1]_include.cmake")
include("/root/repo/build/tests/plan_compile_test[1]_include.cmake")
include("/root/repo/build/tests/ra_expr_test[1]_include.cmake")
include("/root/repo/build/tests/blowup_test[1]_include.cmake")
include("/root/repo/build/tests/axiom_rb_test[1]_include.cmake")
include("/root/repo/build/tests/certificates_test[1]_include.cmake")
include("/root/repo/build/tests/semantic_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
