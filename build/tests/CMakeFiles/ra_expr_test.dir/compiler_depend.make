# Empty compiler generated dependencies file for ra_expr_test.
# This may be replaced when dependencies are built.
