file(REMOVE_RECURSE
  "CMakeFiles/ra_expr_test.dir/ra_expr_test.cpp.o"
  "CMakeFiles/ra_expr_test.dir/ra_expr_test.cpp.o.d"
  "ra_expr_test"
  "ra_expr_test.pdb"
  "ra_expr_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ra_expr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
