# Empty dependencies file for axiom_rb_test.
# This may be replaced when dependencies are built.
