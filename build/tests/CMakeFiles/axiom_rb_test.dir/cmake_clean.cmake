file(REMOVE_RECURSE
  "CMakeFiles/axiom_rb_test.dir/axiom_rb_test.cpp.o"
  "CMakeFiles/axiom_rb_test.dir/axiom_rb_test.cpp.o.d"
  "axiom_rb_test"
  "axiom_rb_test.pdb"
  "axiom_rb_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/axiom_rb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
