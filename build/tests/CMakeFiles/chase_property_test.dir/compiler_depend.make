# Empty compiler generated dependencies file for chase_property_test.
# This may be replaced when dependencies are built.
