# Empty compiler generated dependencies file for simplification_test.
# This may be replaced when dependencies are built.
