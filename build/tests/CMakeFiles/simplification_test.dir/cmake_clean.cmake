file(REMOVE_RECURSE
  "CMakeFiles/simplification_test.dir/simplification_test.cpp.o"
  "CMakeFiles/simplification_test.dir/simplification_test.cpp.o.d"
  "simplification_test"
  "simplification_test.pdb"
  "simplification_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simplification_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
