file(REMOVE_RECURSE
  "CMakeFiles/linearization_test.dir/linearization_test.cpp.o"
  "CMakeFiles/linearization_test.dir/linearization_test.cpp.o.d"
  "linearization_test"
  "linearization_test.pdb"
  "linearization_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/linearization_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
