# Empty dependencies file for proof_plans_test.
# This may be replaced when dependencies are built.
