
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/proof_plans_test.cpp" "tests/CMakeFiles/proof_plans_test.dir/proof_plans_test.cpp.o" "gcc" "tests/CMakeFiles/proof_plans_test.dir/proof_plans_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/rbda_core.dir/DependInfo.cmake"
  "/root/repo/build/src/parser/CMakeFiles/rbda_parser.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/rbda_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/chase/CMakeFiles/rbda_chase.dir/DependInfo.cmake"
  "/root/repo/build/src/obs/CMakeFiles/rbda_obs.dir/DependInfo.cmake"
  "/root/repo/build/src/schema/CMakeFiles/rbda_schema.dir/DependInfo.cmake"
  "/root/repo/build/src/constraints/CMakeFiles/rbda_constraints.dir/DependInfo.cmake"
  "/root/repo/build/src/logic/CMakeFiles/rbda_logic.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/rbda_data.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/rbda_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
