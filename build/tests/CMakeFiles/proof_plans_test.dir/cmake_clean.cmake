file(REMOVE_RECURSE
  "CMakeFiles/proof_plans_test.dir/proof_plans_test.cpp.o"
  "CMakeFiles/proof_plans_test.dir/proof_plans_test.cpp.o.d"
  "proof_plans_test"
  "proof_plans_test.pdb"
  "proof_plans_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proof_plans_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
