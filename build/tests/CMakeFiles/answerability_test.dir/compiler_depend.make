# Empty compiler generated dependencies file for answerability_test.
# This may be replaced when dependencies are built.
