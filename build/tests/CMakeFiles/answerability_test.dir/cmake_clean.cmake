file(REMOVE_RECURSE
  "CMakeFiles/answerability_test.dir/answerability_test.cpp.o"
  "CMakeFiles/answerability_test.dir/answerability_test.cpp.o.d"
  "answerability_test"
  "answerability_test.pdb"
  "answerability_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/answerability_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
