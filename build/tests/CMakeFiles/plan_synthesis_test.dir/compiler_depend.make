# Empty compiler generated dependencies file for plan_synthesis_test.
# This may be replaced when dependencies are built.
