file(REMOVE_RECURSE
  "CMakeFiles/plan_synthesis_test.dir/plan_synthesis_test.cpp.o"
  "CMakeFiles/plan_synthesis_test.dir/plan_synthesis_test.cpp.o.d"
  "plan_synthesis_test"
  "plan_synthesis_test.pdb"
  "plan_synthesis_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plan_synthesis_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
