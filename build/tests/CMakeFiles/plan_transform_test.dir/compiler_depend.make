# Empty compiler generated dependencies file for plan_transform_test.
# This may be replaced when dependencies are built.
