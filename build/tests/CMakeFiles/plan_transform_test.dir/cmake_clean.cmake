file(REMOVE_RECURSE
  "CMakeFiles/plan_transform_test.dir/plan_transform_test.cpp.o"
  "CMakeFiles/plan_transform_test.dir/plan_transform_test.cpp.o.d"
  "plan_transform_test"
  "plan_transform_test.pdb"
  "plan_transform_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plan_transform_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
