# Empty compiler generated dependencies file for blowup_test.
# This may be replaced when dependencies are built.
