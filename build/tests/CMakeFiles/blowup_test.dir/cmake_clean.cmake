file(REMOVE_RECURSE
  "CMakeFiles/blowup_test.dir/blowup_test.cpp.o"
  "CMakeFiles/blowup_test.dir/blowup_test.cpp.o.d"
  "blowup_test"
  "blowup_test.pdb"
  "blowup_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blowup_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
