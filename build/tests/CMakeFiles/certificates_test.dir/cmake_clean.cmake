file(REMOVE_RECURSE
  "CMakeFiles/certificates_test.dir/certificates_test.cpp.o"
  "CMakeFiles/certificates_test.dir/certificates_test.cpp.o.d"
  "certificates_test"
  "certificates_test.pdb"
  "certificates_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/certificates_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
