# Empty compiler generated dependencies file for certificates_test.
# This may be replaced when dependencies are built.
