file(REMOVE_RECURSE
  "CMakeFiles/plan_compile_test.dir/plan_compile_test.cpp.o"
  "CMakeFiles/plan_compile_test.dir/plan_compile_test.cpp.o.d"
  "plan_compile_test"
  "plan_compile_test.pdb"
  "plan_compile_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plan_compile_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
