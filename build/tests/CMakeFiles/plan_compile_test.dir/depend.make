# Empty dependencies file for plan_compile_test.
# This may be replaced when dependencies are built.
